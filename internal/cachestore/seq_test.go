package cachestore

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// seqPath returns a fresh store path for the replication-sequence tests.
func seqPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "replica.cache")
}

func TestLastSeqTracksAppends(t *testing.T) {
	s, err := Create(seqPath(t), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if seq, _ := s.LastSeq(); seq != 0 {
		t.Fatalf("LastSeq of empty store = %d, want 0", seq)
	}
	for k := 0; k < 5; k++ {
		if err := s.Append(k, k+1, float64(k+1)/10); err != nil {
			t.Fatal(err)
		}
	}
	if seq, _ := s.LastSeq(); seq != 5 {
		t.Fatalf("LastSeq = %d after 5 appends, want 5", seq)
	}
}

func TestReadFromWindows(t *testing.T) {
	s, err := Create(seqPath(t), 32)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := []Record{{0, 1, 0.1}, {1, 2, 0.2}, {2, 3, 0.3}, {3, 4, 0.4}}
	for _, r := range want {
		if err := s.Append(r.I, r.J, r.Dist); err != nil {
			t.Fatal(err)
		}
	}
	// Middle window.
	got, err := s.ReadFrom(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != want[1] || got[1] != want[2] {
		t.Fatalf("ReadFrom(1,2) = %+v, want %+v", got, want[1:3])
	}
	// Window past the end is clamped, not an error.
	got, err = s.ReadFrom(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want[3] {
		t.Fatalf("ReadFrom(3,10) = %+v, want %+v", got, want[3:])
	}
	// Cursor exactly at the end: empty, no error.
	if got, err := s.ReadFrom(4, 8); err != nil || len(got) != 0 {
		t.Fatalf("ReadFrom(4,8) = %+v, %v, want empty, nil", got, err)
	}
	// ReadFrom must not disturb the append position.
	if err := s.Append(9, 10, 0.9); err != nil {
		t.Fatal(err)
	}
	if seq, _ := s.LastSeq(); seq != 5 {
		t.Fatalf("LastSeq = %d after ReadFrom+Append, want 5", seq)
	}
}

func TestReadFromStopsAtDamage(t *testing.T) {
	path := seqPath(t)
	s, _ := Create(path, 16)
	s.Append(0, 1, 0.1)
	s.Append(1, 2, 0.2)
	s.Append(2, 3, 0.3)
	s.Close()
	// Corrupt the middle record's payload.
	f, _ := os.OpenFile(path, os.O_RDWR, 0)
	f.WriteAt([]byte{0xee}, headerSize+recordSize+5)
	f.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.ReadFrom(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("ReadFrom returned %d records past damage, want 1", len(got))
	}
}

func TestReadFromConcurrentWithAppends(t *testing.T) {
	// The replicator tails a store another goroutine is appending to;
	// ReadFrom must only ever surface complete, checksummed records and
	// must not corrupt the writer's append offset. Run with -race.
	s, err := Create(seqPath(t), 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const total = 800
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < total; k++ {
			if err := s.Append(k%100, 100+k%200, float64(k%97)/97); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var cursor int64
	for cursor < total {
		recs, err := s.ReadFrom(cursor, 64)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range recs {
			k := int(cursor) + i
			if r.Dist != float64(k%97)/97 {
				t.Fatalf("record %d = %+v, wrong payload", k, r)
			}
		}
		cursor += int64(len(recs))
	}
	wg.Wait()
}

func TestAppendFromIdempotentAndGapChecked(t *testing.T) {
	s, err := Create(seqPath(t), 32)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	batch := []Record{{0, 1, 0.1}, {1, 2, 0.2}, {2, 3, 0.3}}
	seq, err := s.AppendFrom(0, batch)
	if err != nil || seq != 3 {
		t.Fatalf("AppendFrom(0) = %d, %v, want 3, nil", seq, err)
	}
	// Overlapping retry: first two records already present, third is new.
	seq, err = s.AppendFrom(1, []Record{{1, 2, 0.2}, {2, 3, 0.3}, {4, 5, 0.5}})
	if err != nil || seq != 4 {
		t.Fatalf("overlapping AppendFrom = %d, %v, want 4, nil", seq, err)
	}
	// Fully-contained retry is a no-op.
	seq, err = s.AppendFrom(0, batch)
	if err != nil || seq != 4 {
		t.Fatalf("contained AppendFrom = %d, %v, want 4, nil", seq, err)
	}
	if n, _ := s.Len(); n != 4 {
		t.Fatalf("Len = %d, want 4 (idempotent retries must not duplicate)", n)
	}
	// A gap is refused and reports the cursor to rewind to.
	seq, err = s.AppendFrom(9, []Record{{6, 7, 0.7}})
	if !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap AppendFrom err = %v, want ErrSeqGap", err)
	}
	if seq != 4 {
		t.Fatalf("gap AppendFrom cursor = %d, want 4", seq)
	}
}

func TestReplicaMidStreamTruncationResumes(t *testing.T) {
	// The replica-side crash drill: a replica applying a replicated stream
	// dies with a torn tail (crash mid-AppendFrom). On reopen the torn
	// record is dropped, LastSeq names the surviving prefix, and the
	// primary's resend from that cursor converges the replica to the full
	// log — the resume path the handoff protocol leans on.
	primaryPath := filepath.Join(t.TempDir(), "primary.cache")
	replicaPath := filepath.Join(t.TempDir(), "replica.cache")
	p, err := Create(primaryPath, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for k := 0; k < 10; k++ {
		if err := p.Append(k, k+1, float64(k+1)/16); err != nil {
			t.Fatal(err)
		}
	}

	// First replication leg: records [0, 6) reach the replica.
	r, err := Create(replicaPath, 64)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := p.ReadFrom(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AppendFrom(0, recs); err != nil {
		t.Fatal(err)
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-stream: a trailing in-flight record is torn. The crashed
	// handle is abandoned, like the process it lived in.
	f, err := os.OpenFile(replicaPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, recordSize-3)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reopen: the torn record is truncated away, the prefix survives.
	r2, err := Open(replicaPath)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	seq, err := r2.LastSeq()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("replica LastSeq after torn-tail reopen = %d, want 6", seq)
	}
	// Resume: the primary resends from the replica's cursor.
	rest, err := p.ReadFrom(seq, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.AppendFrom(seq, rest); err != nil {
		t.Fatal(err)
	}
	var got, want []Record
	r2.Replay(func(rec Record) bool { got = append(got, rec); return true })
	p.Replay(func(rec Record) bool { want = append(want, rec); return true })
	if len(got) != len(want) {
		t.Fatalf("replica has %d records after resume, primary has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: replica %+v != primary %+v", i, got[i], want[i])
		}
	}
}

func TestReplicaTruncatedDeeperThanStream(t *testing.T) {
	// Mid-stream truncation can eat whole records, not just tear the last
	// one (e.g. a filesystem rollback). The replica then reports an older
	// cursor and AppendFrom's idempotent overlap replays the lost suffix.
	path := seqPath(t)
	s, _ := Create(path, 32)
	all := []Record{{0, 1, 0.1}, {1, 2, 0.2}, {2, 3, 0.3}, {3, 4, 0.4}, {4, 5, 0.5}}
	for _, r := range all {
		s.Append(r.I, r.J, r.Dist)
	}
	s.Close()
	// Roll back to 2 complete records plus half of the third.
	if err := os.Truncate(path, headerSize+2*recordSize+9); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	seq, _ := s2.LastSeq()
	if seq != 2 {
		t.Fatalf("LastSeq after deep truncation = %d, want 2", seq)
	}
	// The primary, unaware, resends an overlapping batch from seq 1.
	if _, err := s2.AppendFrom(1, all[1:]); err != nil {
		t.Fatal(err)
	}
	if n, _ := s2.Len(); n != len(all) {
		t.Fatalf("Len = %d after overlap resend, want %d", n, len(all))
	}
	var got []Record
	s2.Replay(func(r Record) bool { got = append(got, r); return true })
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], all[i])
		}
	}
}
