package cachestore

import (
	"fmt"
	"os"
	"sort"

	"metricprox/internal/lp"
)

// CalibrateReport summarises one offline calibration pass.
type CalibrateReport struct {
	// Records is the number of distinct pairs the store held (replay keeps
	// the first occurrence of a duplicated pair, matching load semantics).
	Records int
	// Triangles is the number of point triples with all three pairwise
	// distances cached — the constraint set the projection enforced.
	Triangles int
	// MarginBefore and MarginAfter are the worst additive triangle
	// violations measured over those triangles before and after repair.
	MarginBefore, MarginAfter float64
	// Iterations is the number of projection sweeps performed.
	Iterations int
}

// Calibrate repairs a cached distance set in place: it loads every record
// from the store at path, finds all triangles whose three sides are all
// cached, projects the distances onto the metric polytope with the HLWB
// scheme in internal/lp (nearest-repair semantics: small targeted edits),
// and atomically rewrites the store with the calibrated values.
//
// The rewrite goes through path+".tmp" followed by os.Rename, so a crash
// mid-calibration leaves the original store untouched. Pairs that close
// no fully-cached triangle are copied through unchanged. tol ≤ 0 defaults
// to 1e-9; maxIter ≤ 0 defaults to 10000.
//
// This is the repair arm of the near-metric subsystem: detection
// (metric.Auditor) tells you the cache is inconsistent, ε-slack keeps
// queries sound meanwhile, and Calibrate removes the measured margin so
// future sessions can drop the slack.
func Calibrate(path string, tol float64, maxIter int) (CalibrateReport, error) {
	var rep CalibrateReport
	st, err := Open(path)
	if err != nil {
		return rep, err
	}
	n := st.N()

	// Load the distinct pairs in append order (first occurrence wins,
	// mirroring what a session replaying this store would see).
	idx := make(map[pair]int)
	var pairs []pair
	var x []float64
	replayErr := st.Replay(func(r Record) bool {
		p := pair{r.I, r.J}
		if p.i > p.j {
			p.i, p.j = p.j, p.i
		}
		if _, dup := idx[p]; dup {
			return true
		}
		idx[p] = len(x)
		pairs = append(pairs, p)
		x = append(x, r.Dist)
		return true
	})
	if replayErr != nil {
		st.Close()
		return rep, replayErr
	}
	if err := st.Close(); err != nil {
		return rep, err
	}
	rep.Records = len(pairs)

	// Enumerate fully-cached triangles via sorted adjacency intersection:
	// for each cached pair (i, j), every k adjacent to both closes one.
	// Restricting to k > j counts each triple exactly once.
	adj := make([][]int, n)
	for _, p := range pairs {
		adj[p.i] = append(adj[p.i], p.j)
		adj[p.j] = append(adj[p.j], p.i)
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	var tris [][3]int
	for _, p := range pairs {
		ai, aj := adj[p.i], adj[p.j]
		for a, b := 0, 0; a < len(ai) && b < len(aj); {
			switch {
			case ai[a] < aj[b]:
				a++
			case ai[a] > aj[b]:
				b++
			default:
				if k := ai[a]; k > p.j {
					tris = append(tris, [3]int{
						idx[pair{p.i, p.j}],
						idx[orderedPair(p.i, k)],
						idx[orderedPair(k, p.j)],
					})
				}
				a++
				b++
			}
		}
	}
	rep.Triangles = len(tris)
	rep.MarginBefore = lp.MaxTriangleViolation(x, tris)

	res := lp.ProjectTriangles(x, tris, maxIter, tol)
	rep.MarginAfter = res.MaxViolation
	rep.Iterations = res.Iterations

	// Atomic rewrite: build the calibrated store beside the original and
	// rename over it only once fully synced.
	tmp := path + ".tmp"
	out, err := Create(tmp, n)
	if err != nil {
		return rep, err
	}
	for q, p := range pairs {
		if err := out.Append(p.i, p.j, x[q]); err != nil {
			out.Close()
			os.Remove(tmp)
			return rep, fmt.Errorf("cachestore: calibrate rewrite: %w", err)
		}
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return rep, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return rep, err
	}
	return rep, nil
}

type pair struct{ i, j int }

func orderedPair(i, j int) pair {
	if i > j {
		i, j = j, i
	}
	return pair{i, j}
}
