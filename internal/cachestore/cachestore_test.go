package cachestore

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func tempPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "dist.cache")
}

func TestCreateAppendReplay(t *testing.T) {
	path := tempPath(t)
	s, err := Create(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{{1, 2, 0.5}, {3, 7, 0.25}, {0, 99, 1}}
	for _, r := range want {
		if err := s.Append(r.I, r.J, r.Dist); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.N() != 100 {
		t.Fatalf("N = %d, want 100", s2.N())
	}
	var got []Record
	if err := s2.Replay(func(r Record) bool {
		got = append(got, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAppendNormalisesPair(t *testing.T) {
	path := tempPath(t)
	s, _ := Create(path, 10)
	s.Append(7, 2, 0.3)
	var r Record
	s.Replay(func(rec Record) bool { r = rec; return true })
	s.Close()
	if r.I != 2 || r.J != 7 {
		t.Fatalf("record not normalised: %+v", r)
	}
}

func TestAppendValidation(t *testing.T) {
	s, _ := Create(tempPath(t), 10)
	defer s.Close()
	if err := s.Append(3, 3, 0.1); err == nil {
		t.Fatal("self pair accepted")
	}
	if err := s.Append(0, 10, 0.1); err == nil {
		t.Fatal("out-of-universe pair accepted")
	}
	if err := s.Append(0, 1, math.NaN()); err == nil {
		t.Fatal("NaN distance accepted")
	}
	if err := s.Append(0, 1, -0.5); err == nil {
		t.Fatal("negative distance accepted")
	}
}

func TestAppendAfterReopen(t *testing.T) {
	path := tempPath(t)
	s, _ := Create(path, 10)
	s.Append(0, 1, 0.1)
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s2.Append(2, 3, 0.2)
	n, _ := s2.Len()
	s2.Close()
	if n != 2 {
		t.Fatalf("Len = %d after reopen+append, want 2", n)
	}
}

func TestTornWriteRepair(t *testing.T) {
	path := tempPath(t)
	s, _ := Create(path, 10)
	s.Append(0, 1, 0.1)
	s.Append(1, 2, 0.2)
	s.Close()
	// Simulate a crash mid-append: chop 7 bytes off the tail.
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n, _ := s2.Len()
	if n != 1 {
		t.Fatalf("Len = %d after torn-write repair, want 1", n)
	}
	// The store must remain appendable.
	if err := s2.Append(3, 4, 0.4); err != nil {
		t.Fatal(err)
	}
	count := 0
	s2.Replay(func(Record) bool { count++; return true })
	if count != 2 {
		t.Fatalf("replayed %d records, want 2", count)
	}
}

func TestSyncSurvivesCrashWithTornTail(t *testing.T) {
	// A process that Syncs but never Closes (crash) must find every synced
	// record on reopen, even when the crash tore a trailing in-flight
	// append. The torn tail is simulated by appending a partial record
	// through a second handle; the crashed Store is simply abandoned.
	path := tempPath(t)
	s, err := Create(path, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{{0, 1, 0.125}, {2, 3, 0.5}, {4, 5, 0.75}}
	for _, r := range want {
		if err := s.Append(r.I, r.J, r.Dist); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, recordSize-6)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// No s.Close(): the writing process is gone.

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n, _ := s2.Len(); n != len(want) {
		t.Fatalf("Len = %d after crash reopen, want %d", n, len(want))
	}
	var got []Record
	s2.Replay(func(r Record) bool { got = append(got, r); return true })
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range want {
		if got[i] != r {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], r)
		}
	}
}

func TestCreateSyncsHeader(t *testing.T) {
	// A store created and then abandoned (crash before any append or
	// Close) must still open cleanly: Create fsyncs the header.
	path := tempPath(t)
	if _, err := Create(path, 7); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after create-then-crash: %v", err)
	}
	defer s.Close()
	if s.N() != 7 {
		t.Fatalf("N = %d, want 7", s.N())
	}
	if n, _ := s.Len(); n != 0 {
		t.Fatalf("Len = %d, want 0", n)
	}
}

func TestChecksumDamageStopsReplay(t *testing.T) {
	path := tempPath(t)
	s, _ := Create(path, 10)
	s.Append(0, 1, 0.1)
	s.Append(1, 2, 0.2)
	s.Append(2, 3, 0.3)
	s.Close()
	// Flip a byte inside the second record's payload.
	f, _ := os.OpenFile(path, os.O_RDWR, 0)
	f.WriteAt([]byte{0xff}, headerSize+recordSize+9)
	f.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var got []Record
	s2.Replay(func(r Record) bool { got = append(got, r); return true })
	if len(got) != 1 {
		t.Fatalf("replay returned %d records past damage, want 1", len(got))
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := tempPath(t)
	os.WriteFile(path, []byte("not a cache store at all"), 0o644)
	if _, err := Open(path); err == nil {
		t.Fatal("garbage file opened")
	}
}

func TestOpenOrCreate(t *testing.T) {
	path := tempPath(t)
	s, err := OpenOrCreate(path, 50)
	if err != nil {
		t.Fatal(err)
	}
	s.Append(0, 1, 0.9)
	s.Close()
	s2, err := OpenOrCreate(path, 50)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := s2.Len()
	s2.Close()
	if n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	// Universe mismatch must be rejected.
	if _, err := OpenOrCreate(path, 51); err == nil {
		t.Fatal("universe mismatch accepted")
	}
}

func TestReplayEarlyStop(t *testing.T) {
	s, _ := Create(tempPath(t), 10)
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.Append(i, i+1, float64(i)/10)
	}
	seen := 0
	s.Replay(func(Record) bool { seen++; return seen < 2 })
	if seen != 2 {
		t.Fatalf("early stop saw %d records, want 2", seen)
	}
	// Append must still land at the end after a replay.
	s.Append(7, 8, 0.7)
	n, _ := s.Len()
	if n != 6 {
		t.Fatalf("Len = %d after post-replay append, want 6", n)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	// Property: any batch of valid records replays back exactly.
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		path := filepath.Join(t.TempDir(), "q.cache")
		s, err := Create(path, 64)
		if err != nil {
			return false
		}
		var want []Record
		for k := 0; k < int(count%40); k++ {
			i, j := rng.Intn(64), rng.Intn(64)
			if i == j {
				continue
			}
			d := rng.Float64()
			if err := s.Append(i, j, d); err != nil {
				return false
			}
			if i > j {
				i, j = j, i
			}
			want = append(want, Record{i, j, d})
		}
		s.Close()
		s2, err := Open(path)
		if err != nil {
			return false
		}
		defer s2.Close()
		var got []Record
		s2.Replay(func(r Record) bool { got = append(got, r); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
