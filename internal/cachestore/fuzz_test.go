package cachestore

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenArbitraryBytes feeds arbitrary file contents to Open: it must
// never panic, and whenever it does open a store, Replay must terminate
// and yield only in-universe records.
func FuzzOpenArbitraryBytes(f *testing.F) {
	// Seed with a valid store prefix.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.cache")
	s, err := Create(seedPath, 16)
	if err != nil {
		f.Fatal(err)
	}
	s.Append(1, 2, 0.5)
	s.Close()
	valid, _ := os.ReadFile(seedPath)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.cache")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		st, err := Open(path)
		if err != nil {
			return // rejection is fine; panics are not
		}
		defer st.Close()
		count := 0
		st.Replay(func(r Record) bool {
			if r.I < 0 || r.J < 0 || r.I >= st.N() || r.J >= st.N() {
				t.Fatalf("out-of-universe record %+v from fuzzed store", r)
			}
			if r.Dist < 0 || r.Dist != r.Dist {
				t.Fatalf("invalid distance %v from fuzzed store", r.Dist)
			}
			count++
			return count < 1<<20 // hard stop against pathological loops
		})
		// The store must remain appendable after surviving Open.
		if st.N() > 3 {
			if err := st.Append(0, 1, 0.25); err != nil {
				t.Fatalf("append after fuzzed open: %v", err)
			}
		}
	})
}
