package faultmetric

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"metricprox/internal/metric"
)

// Typed injection errors. ErrTransient and ErrRateLimited are retryable;
// ErrOutage models a hard backend failure burst (also retryable, but
// designed to outlast small retry budgets and trip breakers).
var (
	ErrTransient   = errors.New("faultmetric: injected transient error")
	ErrRateLimited = errors.New("faultmetric: injected rate-limit rejection")
	ErrOutage      = errors.New("faultmetric: injected outage window")
)

// Config tunes the fault schedule. All rates are probabilities in [0, 1]
// evaluated independently per attempt from the deterministic hash stream.
type Config struct {
	// Seed drives every injection decision; two injectors with the same
	// seed and config inject identically on identical (pair, attempt)
	// streams.
	Seed int64

	// TransientRate is the per-attempt probability of ErrTransient.
	TransientRate float64
	// RateLimitRate is the per-attempt probability of ErrRateLimited.
	RateLimitRate float64
	// CorruptRate is the per-attempt probability of returning a corrupt
	// value (NaN or a negative distance) with a nil error.
	CorruptRate float64

	// Latency, when nonzero, is slept (context-aware) on roughly
	// LatencyRate of calls; LatencyRate 0 with Latency set means every
	// call.
	Latency     time.Duration
	LatencyRate float64

	// OutagePeriod > 0 opens an outage window every OutagePeriod calls
	// (global call index), during which OutageLen consecutive calls fail
	// with ErrOutage. OutageLen 0 with a period set means 1.
	OutagePeriod int
	OutageLen    int

	// MaxFailuresPerPair caps the number of injected failures (transient,
	// rate-limit, or corrupt) charged to any single pair; once reached,
	// further attempts on that pair succeed (outage windows excepted).
	// Setting it below the retry budget of the policy under test makes
	// completion deterministic. 0 means no cap.
	MaxFailuresPerPair int
}

// Counters is the injector's ground-truth account of what it did.
type Counters struct {
	Calls      int64 // attempts that reached the injector
	Transients int64 // ErrTransient injections
	RateLimits int64 // ErrRateLimited injections
	Outages    int64 // ErrOutage injections
	Corrupts   int64 // corrupt (NaN/negative) responses
	Latencies  int64 // calls that slept the injected latency
	CtxCancels int64 // calls aborted by their context (during latency)
}

// Failures returns the number of attempts that returned an error.
func (c Counters) Failures() int64 { return c.Transients + c.RateLimits + c.Outages }

// BadResponses returns every attempt a resilient caller must retry:
// errored attempts plus corrupt values.
func (c Counters) BadResponses() int64 { return c.Failures() + c.Corrupts }

// Injector wraps a metric.Space as a metric.FallibleOracle with the
// configured fault schedule. It is safe for concurrent use.
type Injector struct {
	base metric.Space
	cfg  Config

	mu       sync.Mutex
	calls    int64
	attempts map[int64]int64 // per-pair attempt index
	failed   map[int64]int64 // per-pair injected failure count
	counts   Counters
	ins      *instruments // obs mirrors once Observe is called; guarded by mu
}

// New wraps base with the given fault schedule.
func New(base metric.Space, cfg Config) *Injector {
	if cfg.OutagePeriod > 0 && cfg.OutageLen <= 0 {
		cfg.OutageLen = 1
	}
	return &Injector{
		base:     base,
		cfg:      cfg,
		attempts: make(map[int64]int64),
		failed:   make(map[int64]int64),
	}
}

// Len returns the base universe size.
func (f *Injector) Len() int { return f.base.Len() }

// Counters snapshots the injection counts.
func (f *Injector) Counters() Counters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// DistanceCtx serves one attempt: it draws the fault decision for this
// (pair, attempt) from the seeded hash stream, injects the scheduled
// misbehaviour, and otherwise answers from the wrapped space.
func (f *Injector) DistanceCtx(ctx context.Context, i, j int) (float64, error) {
	key := pairKey(i, j)

	f.mu.Lock()
	f.calls++
	call := f.calls
	attempt := f.attempts[key]
	f.attempts[key] = attempt + 1
	f.counts.Calls++
	ins := f.ins
	if ins != nil {
		ins.calls.Inc()
	}

	// Outage windows: call-indexed bursts of consecutive failures.
	if f.cfg.OutagePeriod > 0 {
		phase := (call - 1) % int64(f.cfg.OutagePeriod)
		if phase < int64(f.cfg.OutageLen) {
			f.counts.Outages++
			if ins != nil {
				ins.outages.Inc()
			}
			f.mu.Unlock()
			return 0, fmt.Errorf("%w (call %d)", ErrOutage, call)
		}
	}

	capped := f.cfg.MaxFailuresPerPair > 0 && f.failed[key] >= int64(f.cfg.MaxFailuresPerPair)
	var inject error
	corrupt := false
	if !capped {
		switch {
		case f.roll(key, attempt, rollRateLimit) < f.cfg.RateLimitRate:
			inject = fmt.Errorf("%w (pair %d,%d attempt %d)", ErrRateLimited, i, j, attempt)
			f.counts.RateLimits++
			if ins != nil {
				ins.rateLimits.Inc()
			}
		case f.roll(key, attempt, rollTransient) < f.cfg.TransientRate:
			inject = fmt.Errorf("%w (pair %d,%d attempt %d)", ErrTransient, i, j, attempt)
			f.counts.Transients++
			if ins != nil {
				ins.transients.Inc()
			}
		case f.roll(key, attempt, rollCorrupt) < f.cfg.CorruptRate:
			corrupt = true
			f.counts.Corrupts++
			if ins != nil {
				ins.corrupts.Inc()
			}
		}
		if inject != nil || corrupt {
			f.failed[key]++
		}
	}
	sleep := time.Duration(0)
	if f.cfg.Latency > 0 && (f.cfg.LatencyRate <= 0 || f.roll(key, attempt, rollLatency) < f.cfg.LatencyRate) {
		sleep = f.cfg.Latency
		f.counts.Latencies++
		if ins != nil {
			ins.latencies.Inc()
		}
	}
	f.mu.Unlock()

	if sleep > 0 {
		if err := metric.SleepCtx(ctx, sleep); err != nil {
			f.mu.Lock()
			f.counts.CtxCancels++
			if f.ins != nil {
				f.ins.ctxCancels.Inc()
			}
			f.mu.Unlock()
			return 0, err
		}
	}
	if inject != nil {
		return 0, inject
	}
	if corrupt {
		// Alternate between the two corruption shapes deterministically.
		if hash64(f.cfg.Seed, key, attempt, rollCorruptKind)&1 == 0 {
			return math.NaN(), nil
		}
		return -1, nil
	}
	if err := ctx.Err(); err != nil {
		f.mu.Lock()
		f.counts.CtxCancels++
		if f.ins != nil {
			f.ins.ctxCancels.Inc()
		}
		f.mu.Unlock()
		return 0, err
	}
	return f.base.Distance(i, j), nil
}

// roll draws the uniform [0,1) variate for one decision stream.
func (f *Injector) roll(key, attempt int64, stream int64) float64 {
	return float64(hash64(f.cfg.Seed, key, attempt, stream)>>11) / float64(1<<53)
}

// Decision streams keep the per-attempt rolls independent of each other.
const (
	rollTransient int64 = iota + 1
	rollRateLimit
	rollCorrupt
	rollCorruptKind
	rollLatency
)

// pairKey normalises an unordered pair into one int64.
func pairKey(i, j int) int64 {
	if i > j {
		i, j = j, i
	}
	return int64(i)<<32 | int64(uint32(j))
}

// hash64 is a splitmix64-style mix of the decision coordinates; it is the
// entire source of randomness, making every schedule a pure function of
// the seed.
func hash64(seed, key, attempt, stream int64) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(key)*0xbf58476d1ce4e5b9 ^
		uint64(attempt)*0x94d049bb133111eb ^ uint64(stream)*0xd6e8feb86659fd93
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

var _ metric.FallibleOracle = (*Injector)(nil)
