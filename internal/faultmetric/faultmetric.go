package faultmetric

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
)

// Typed injection errors. ErrTransient and ErrRateLimited are retryable;
// ErrOutage models a hard backend failure burst (also retryable, but
// designed to outlast small retry budgets and trip breakers).
var (
	ErrTransient   = errors.New("faultmetric: injected transient error")
	ErrRateLimited = errors.New("faultmetric: injected rate-limit rejection")
	ErrOutage      = errors.New("faultmetric: injected outage window")
)

// Config tunes the fault schedule. All rates are probabilities in [0, 1]
// evaluated independently per attempt from the deterministic hash stream.
type Config struct {
	// Seed drives every injection decision; two injectors with the same
	// seed and config inject identically on identical (pair, attempt)
	// streams.
	Seed int64

	// TransientRate is the per-attempt probability of ErrTransient.
	TransientRate float64
	// RateLimitRate is the per-attempt probability of ErrRateLimited.
	RateLimitRate float64
	// CorruptRate is the per-attempt probability of returning a corrupt
	// value (NaN or a negative distance) with a nil error.
	CorruptRate float64

	// Latency, when nonzero, is slept (context-aware) on roughly
	// LatencyRate of calls; LatencyRate 0 with Latency set means every
	// call.
	Latency     time.Duration
	LatencyRate float64

	// OutagePeriod > 0 opens an outage window every OutagePeriod calls
	// (global call index), during which OutageLen consecutive calls fail
	// with ErrOutage. OutageLen 0 with a period set means 1.
	OutagePeriod int
	OutageLen    int

	// MaxFailuresPerPair caps the number of injected failures (transient,
	// rate-limit, or corrupt) charged to any single pair; once reached,
	// further attempts on that pair succeed (outage windows excepted).
	// Setting it below the retry budget of the policy under test makes
	// completion deterministic. 0 means no cap.
	MaxFailuresPerPair int

	// NearMetricEps > 0 perturbs successful responses into a near-metric:
	// each pair's distance is deterministically lowered by up to
	// NearMetricEps/2 (never raised, never below zero), so every triangle's
	// additive violation margin is bounded by NearMetricEps (see
	// MarginBound). The perturbation is a pure function of (seed, pair) —
	// retries and re-resolutions of a pair always see the same value, so
	// memoising layers above stay coherent.
	NearMetricEps float64
	// NearMetricRatio > 1 additionally scales each perturbed distance by a
	// deterministic per-pair factor in (1/NearMetricRatio, 1], bounding the
	// multiplicative triangle violation: d(i,j) ≤ NearMetricRatio ·
	// (d(i,k)+d(k,j)) + NearMetricEps. Values ≤ 1 disable ratio
	// perturbation.
	NearMetricRatio float64
}

// MarginBound returns the guaranteed upper bound on the additive triangle
// violation margin introduced by the near-metric perturbation alone
// (ratio perturbation excluded): with only NearMetricEps set, every
// triangle of perturbed distances satisfies d(i,j) ≤ d(i,k) + d(k,j) +
// MarginBound(). A SlackPolicy with Additive ≥ this bound keeps every
// relaxed interval sound.
func (c Config) MarginBound() float64 {
	if c.NearMetricEps > 0 {
		return c.NearMetricEps
	}
	return 0
}

// Counters is the injector's ground-truth account of what it did.
type Counters struct {
	Calls      int64 // attempts that reached the injector
	Transients int64 // ErrTransient injections
	RateLimits int64 // ErrRateLimited injections
	Outages    int64 // ErrOutage injections
	Corrupts   int64 // corrupt (NaN/negative) responses
	Latencies  int64 // calls that slept the injected latency
	CtxCancels int64 // calls aborted by their context (during latency)

	// Perturbations counts successful responses whose value was changed
	// by the near-metric perturbation — the ground truth for how many
	// potentially triangle-violating distances left the injector.
	Perturbations int64
}

// Failures returns the number of attempts that returned an error.
func (c Counters) Failures() int64 { return c.Transients + c.RateLimits + c.Outages }

// BadResponses returns every attempt a resilient caller must retry:
// errored attempts plus corrupt values.
func (c Counters) BadResponses() int64 { return c.Failures() + c.Corrupts }

// Injector wraps a metric.Space as a metric.FallibleOracle with the
// configured fault schedule. It is safe for concurrent use.
type Injector struct {
	base metric.Space
	cfg  Config

	mu       sync.Mutex
	calls    int64
	attempts map[int64]int64 // per-pair attempt index
	failed   map[int64]int64 // per-pair injected failure count
	counts   Counters
	ins      *instruments // obs mirrors once Observe is called; guarded by mu
}

// New wraps base with the given fault schedule.
func New(base metric.Space, cfg Config) *Injector {
	if cfg.OutagePeriod > 0 && cfg.OutageLen <= 0 {
		cfg.OutageLen = 1
	}
	return &Injector{
		base:     base,
		cfg:      cfg,
		attempts: make(map[int64]int64),
		failed:   make(map[int64]int64),
	}
}

// Len returns the base universe size.
func (f *Injector) Len() int { return f.base.Len() }

// Counters snapshots the injection counts.
func (f *Injector) Counters() Counters {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// DistanceCtx serves one attempt: it draws the fault decision for this
// (pair, attempt) from the seeded hash stream, injects the scheduled
// misbehaviour, and otherwise answers from the wrapped space.
func (f *Injector) DistanceCtx(ctx context.Context, i, j int) (float64, error) {
	key := pairKey(i, j)

	f.mu.Lock()
	f.calls++
	call := f.calls
	attempt := f.attempts[key]
	f.attempts[key] = attempt + 1
	f.counts.Calls++
	ins := f.ins
	if ins != nil {
		ins.calls.Inc()
	}

	// Outage windows: call-indexed bursts of consecutive failures.
	if f.cfg.OutagePeriod > 0 {
		phase := (call - 1) % int64(f.cfg.OutagePeriod)
		if phase < int64(f.cfg.OutageLen) {
			f.counts.Outages++
			if ins != nil {
				ins.outages.Inc()
			}
			f.mu.Unlock()
			return 0, fmt.Errorf("%w (call %d)", ErrOutage, call)
		}
	}

	capped := f.cfg.MaxFailuresPerPair > 0 && f.failed[key] >= int64(f.cfg.MaxFailuresPerPair)
	var inject error
	corrupt := false
	if !capped {
		switch {
		case f.roll(key, attempt, rollRateLimit) < f.cfg.RateLimitRate:
			inject = fmt.Errorf("%w (pair %d,%d attempt %d)", ErrRateLimited, i, j, attempt)
			f.counts.RateLimits++
			if ins != nil {
				ins.rateLimits.Inc()
			}
		case f.roll(key, attempt, rollTransient) < f.cfg.TransientRate:
			inject = fmt.Errorf("%w (pair %d,%d attempt %d)", ErrTransient, i, j, attempt)
			f.counts.Transients++
			if ins != nil {
				ins.transients.Inc()
			}
		case f.roll(key, attempt, rollCorrupt) < f.cfg.CorruptRate:
			corrupt = true
			f.counts.Corrupts++
			if ins != nil {
				ins.corrupts.Inc()
			}
		}
		if inject != nil || corrupt {
			f.failed[key]++
		}
	}
	sleep := time.Duration(0)
	if f.cfg.Latency > 0 && (f.cfg.LatencyRate <= 0 || f.roll(key, attempt, rollLatency) < f.cfg.LatencyRate) {
		sleep = f.cfg.Latency
		f.counts.Latencies++
		if ins != nil {
			ins.latencies.Inc()
		}
	}
	f.mu.Unlock()

	if sleep > 0 {
		if err := metric.SleepCtx(ctx, sleep); err != nil {
			f.mu.Lock()
			f.counts.CtxCancels++
			if f.ins != nil {
				f.ins.ctxCancels.Inc()
			}
			f.mu.Unlock()
			return 0, err
		}
	}
	if inject != nil {
		return 0, inject
	}
	if corrupt {
		// Alternate between the two corruption shapes deterministically.
		if hash64(f.cfg.Seed, key, attempt, rollCorruptKind)&1 == 0 {
			return math.NaN(), nil
		}
		return -1, nil
	}
	if err := ctx.Err(); err != nil {
		f.mu.Lock()
		f.counts.CtxCancels++
		if f.ins != nil {
			f.ins.ctxCancels.Inc()
		}
		f.mu.Unlock()
		return 0, err
	}
	d := f.base.Distance(i, j)
	if pd := f.perturb(key, d); !fcmp.ExactEq(pd, d) {
		f.mu.Lock()
		f.counts.Perturbations++
		if f.ins != nil {
			f.ins.perturbations.Inc()
		}
		f.mu.Unlock()
		return pd, nil
	}
	return d, nil
}

// perturb applies the near-metric perturbation to one successful
// response. Distances only ever shrink: lowering d(i,j) can only violate
// triangles in which (i,j) is a leg, and each leg shrinks by at most
// NearMetricEps/2, so the additive margin of any triangle is bounded by
// NearMetricEps — the guarantee MarginBound advertises and the chaos
// harness's slack-preservation theorem relies on. (Raising distances
// instead would need a clamp at the space's maximum, and clamping breaks
// the bound.) The draw uses attempt index 0 regardless of the actual
// attempt so that retried and re-resolved pairs observe identical values.
func (f *Injector) perturb(key int64, d float64) float64 {
	eps, ratio := f.cfg.NearMetricEps, f.cfg.NearMetricRatio
	if eps <= 0 && ratio <= 1 {
		return d
	}
	if eps > 0 {
		u := f.roll(key, 0, rollPerturb)
		d = math.Max(0, d-u*eps/2)
	}
	if ratio > 1 {
		u := f.roll(key, 0, rollPerturbRatio)
		d *= 1 - u*(1-1/ratio)
	}
	return d
}

// roll draws the uniform [0,1) variate for one decision stream.
func (f *Injector) roll(key, attempt int64, stream int64) float64 {
	return float64(hash64(f.cfg.Seed, key, attempt, stream)>>11) / float64(1<<53)
}

// Decision streams keep the per-attempt rolls independent of each other.
const (
	rollTransient int64 = iota + 1
	rollRateLimit
	rollCorrupt
	rollCorruptKind
	rollLatency
	rollPerturb
	rollPerturbRatio
)

// pairKey normalises an unordered pair into one int64.
func pairKey(i, j int) int64 {
	if i > j {
		i, j = j, i
	}
	return int64(i)<<32 | int64(uint32(j))
}

// hash64 is a splitmix64-style mix of the decision coordinates; it is the
// entire source of randomness, making every schedule a pure function of
// the seed.
func hash64(seed, key, attempt, stream int64) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(key)*0xbf58476d1ce4e5b9 ^
		uint64(attempt)*0x94d049bb133111eb ^ uint64(stream)*0xd6e8feb86659fd93
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

var _ metric.FallibleOracle = (*Injector)(nil)
