// Package faultmetric is a deterministic, seed-driven chaos wrapper for
// distance oracles. It turns the perfect in-process oracle the library is
// tested against into the hostile backend the paper actually assumes — a
// rate-limited maps API, an edit-distance service behind a flaky load
// balancer — by injecting, per call:
//
//   - transient errors (ErrTransient): one-off failures a retry fixes;
//   - rate-limit rejections (ErrRateLimited): quota-shaped push-back;
//   - outage windows (ErrOutage): bursts of consecutive failures that
//     model a backend going down, sized to trip a circuit breaker;
//   - injected latency: slow responses that exercise per-call deadlines;
//   - corrupt values: NaN / negative distances returned with a nil error,
//     exercising the corrupt-value rejection of the layers above.
//
// Every decision is a pure function of (seed, pair, attempt): attempt k on
// pair (i, j) fails or succeeds identically no matter how goroutines
// interleave, so chaos runs are reproducible from their seed alone and a
// bounded per-pair failure cap can guarantee that a retry policy with a
// sufficient budget always completes. Outage windows are the one
// exception — they are indexed by a global call counter, so their *onset*
// depends on call order under concurrency — but soundness never does:
// failures only ever suppress answers, never corrupt committed ones.
//
// The wrapper counts every injection (Counters) so tests can cross-check
// the retry accounting of the resilient layer against ground truth.
// Injector.Observe additionally mirrors those counts into an
// obs.Registry (faultmetric_* series; see docs/METRICS.md and DESIGN.md
// §8) without influencing the fault schedule.
package faultmetric
