package faultmetric

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		want Config
		err  string // substring of the expected error, "" for success
	}{
		{spec: "rate=0.25", want: Config{Seed: 1, TransientRate: 0.25, MaxFailuresPerPair: SpecMaxFailuresPerPair}},
		{spec: "seed=7,rate=0.5", want: Config{Seed: 7, TransientRate: 0.5, MaxFailuresPerPair: SpecMaxFailuresPerPair}},
		{spec: "rate=1,seed=-3", want: Config{Seed: -3, TransientRate: 1, MaxFailuresPerPair: SpecMaxFailuresPerPair}},
		{spec: " seed=2 ,rate=0.1", want: Config{Seed: 2, TransientRate: 0.1, MaxFailuresPerPair: SpecMaxFailuresPerPair}},

		{spec: "", err: "bad field"},
		{spec: "seed=7", err: "missing required key rate"},
		{spec: "rate=0", err: "rate must be in (0, 1]"},
		{spec: "rate=1.5", err: "rate must be in (0, 1]"},
		{spec: "rate=-0.1", err: "rate must be in (0, 1]"},
		{spec: "rate=abc", err: "bad rate"},
		{spec: "seed=x,rate=0.1", err: "bad seed"},
		{spec: "seed=1.5,rate=0.1", err: "bad seed"},
		{spec: "rate=0.1,rate=0.2", err: "duplicate key"},
		{spec: "rate=0.1,latency=5ms", err: "unknown key"},
		{spec: "rate", err: "bad field"},
		{spec: "rate=", err: "bad field"},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.spec)
		if tc.err != "" {
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Errorf("ParseSpec(%q) error = %v, want containing %q", tc.spec, err, tc.err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q) unexpected error: %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestParseNearMetricSpec(t *testing.T) {
	cases := []struct {
		spec string
		want Config
		err  string // substring of the expected error, "" for success
	}{
		{spec: "eps=0.5", want: Config{Seed: 1, NearMetricEps: 0.5}},
		{spec: "eps=0.5,ratio=1.2", want: Config{Seed: 1, NearMetricEps: 0.5, NearMetricRatio: 1.2}},
		{spec: "ratio=2", want: Config{Seed: 1, NearMetricRatio: 2}},
		{spec: "eps=0,ratio=1.5", want: Config{Seed: 1, NearMetricEps: 0, NearMetricRatio: 1.5}},
		{spec: "seed=9,eps=0.25", want: Config{Seed: 9, NearMetricEps: 0.25}},
		{spec: " eps=0.1 , seed=3", want: Config{Seed: 3, NearMetricEps: 0.1}},

		{spec: "", err: "bad field"},
		{spec: "eps", err: "bad field"},
		{spec: "eps=", err: "bad field"},
		{spec: "seed=4", err: "needs at least one of eps, ratio"},
		{spec: "eps=-0.1", err: "eps must be ≥ 0 and finite"},
		{spec: "eps=NaN", err: "eps must be ≥ 0 and finite"},
		{spec: "eps=+Inf", err: "eps must be ≥ 0 and finite"},
		{spec: "eps=abc", err: "bad eps"},
		{spec: "ratio=0.5", err: "ratio must be ≥ 1 and finite"},
		{spec: "ratio=-2", err: "ratio must be ≥ 1 and finite"},
		{spec: "ratio=Inf", err: "ratio must be ≥ 1 and finite"},
		{spec: "ratio=xyz", err: "bad ratio"},
		{spec: "eps=0.1,eps=0.2", err: "duplicate key"},
		{spec: "eps=0.1,rate=0.2", err: "unknown key"},
		{spec: "seed=1.5,eps=0.1", err: "bad seed"},
	}
	for _, tc := range cases {
		got, err := ParseNearMetricSpec(tc.spec)
		if tc.err != "" {
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Errorf("ParseNearMetricSpec(%q) error = %v, want containing %q", tc.spec, err, tc.err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseNearMetricSpec(%q) unexpected error: %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseNearMetricSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestParseNearMetricSpecErrorListsKnownKeys(t *testing.T) {
	_, err := ParseNearMetricSpec("bogus=1")
	if err == nil || !strings.Contains(err.Error(), "known: eps, ratio, seed") {
		t.Fatalf("unknown-key error should list valid keys, got %v", err)
	}
	_, err = ParseSpec("bogus=1")
	if err == nil || !strings.Contains(err.Error(), "known: seed, rate") {
		t.Fatalf("ParseSpec unknown-key error should list valid keys, got %v", err)
	}
}
