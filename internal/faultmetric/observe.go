package faultmetric

import "metricprox/internal/obs"

// Metric names recorded by the injector once Observe attaches a registry,
// mirroring the Counters fields one-to-one. They are the chaos harness's
// ground truth for cross-checking the resilient layer's accounting; full
// semantics live in docs/METRICS.md.
const (
	// MetricCalls mirrors Counters.Calls.
	MetricCalls = "faultmetric_calls_total"
	// MetricTransients mirrors Counters.Transients.
	MetricTransients = "faultmetric_transients_total"
	// MetricRateLimits mirrors Counters.RateLimits.
	MetricRateLimits = "faultmetric_rate_limits_total"
	// MetricOutages mirrors Counters.Outages.
	MetricOutages = "faultmetric_outages_total"
	// MetricCorrupts mirrors Counters.Corrupts.
	MetricCorrupts = "faultmetric_corrupts_total"
	// MetricLatencies mirrors Counters.Latencies.
	MetricLatencies = "faultmetric_latencies_total"
	// MetricCtxCancels mirrors Counters.CtxCancels.
	MetricCtxCancels = "faultmetric_ctx_cancels_total"
	// MetricPerturbations mirrors Counters.Perturbations.
	MetricPerturbations = "faultmetric_perturbations_total"
)

// instruments is the injector's set of obs handles.
type instruments struct {
	calls      *obs.Counter
	transients *obs.Counter
	rateLimits *obs.Counter
	outages    *obs.Counter
	corrupts   *obs.Counter
	latencies     *obs.Counter
	ctxCancels    *obs.Counter
	perturbations *obs.Counter
}

// Observe registers the injector's instruments in r and mirrors every
// future injection into them. The counters are seeded with the injections
// already counted, so registry values equal Counters() snapshots no
// matter when observation is attached. Call at most once per Injector.
// Observation never influences the fault schedule — decisions remain a
// pure function of (seed, pair, attempt).
func (f *Injector) Observe(r *obs.Registry) {
	ins := &instruments{
		calls:      r.Counter(MetricCalls),
		transients: r.Counter(MetricTransients),
		rateLimits: r.Counter(MetricRateLimits),
		outages:    r.Counter(MetricOutages),
		corrupts:   r.Counter(MetricCorrupts),
		latencies:     r.Counter(MetricLatencies),
		ctxCancels:    r.Counter(MetricCtxCancels),
		perturbations: r.Counter(MetricPerturbations),
	}
	f.mu.Lock()
	ins.calls.Add(f.counts.Calls)
	ins.transients.Add(f.counts.Transients)
	ins.rateLimits.Add(f.counts.RateLimits)
	ins.outages.Add(f.counts.Outages)
	ins.corrupts.Add(f.counts.Corrupts)
	ins.latencies.Add(f.counts.Latencies)
	ins.ctxCancels.Add(f.counts.CtxCancels)
	ins.perturbations.Add(f.counts.Perturbations)
	f.ins = ins
	f.mu.Unlock()
}
