package faultmetric

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseSpec parses the CLI fault specification shared by cmd/metricprox
// and cmd/proxbench:
//
//	-faults seed=N,rate=P
//
// into a Config injecting ErrTransient at per-attempt probability P
// (0 < P ≤ 1) from the deterministic stream seeded by N (optional,
// default 1). The returned config caps injected failures at
// SpecMaxFailuresPerPair per pair, so any retry policy with a larger
// attempt budget — resilient.RetryOnlyPolicy in the CLIs — is guaranteed
// to resolve every pair and preserve the fault-free output. Unknown
// keys, duplicates, and out-of-range values are rejected rather than
// ignored: a mistyped fault schedule should fail loudly before any work
// is done.
func ParseSpec(spec string) (Config, error) {
	cfg := Config{Seed: 1, MaxFailuresPerPair: SpecMaxFailuresPerPair}
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok || val == "" {
			return Config{}, fmt.Errorf("faultmetric: bad field %q in spec %q (want key=value)", field, spec)
		}
		if seen[key] {
			return Config{}, fmt.Errorf("faultmetric: duplicate key %q in spec %q", key, spec)
		}
		seen[key] = true
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faultmetric: bad seed %q: %v", val, err)
			}
			cfg.Seed = n
		case "rate":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faultmetric: bad rate %q: %v", val, err)
			}
			if !(p > 0 && p <= 1) {
				return Config{}, fmt.Errorf("faultmetric: rate must be in (0, 1], got %v", p)
			}
			cfg.TransientRate = p
		default:
			return Config{}, fmt.Errorf("faultmetric: unknown key %q in spec %q (known: seed, rate)", key, spec)
		}
	}
	if !seen["rate"] {
		return Config{}, fmt.Errorf("faultmetric: spec %q missing required key rate", spec)
	}
	return cfg, nil
}

// SpecMaxFailuresPerPair is the per-pair failure cap applied by
// ParseSpec. Any retry policy granting more attempts than this per
// resolution completes deterministically under the parsed schedule.
const SpecMaxFailuresPerPair = 3

// ParseNearMetricSpec parses the CLI near-metric specification:
//
//	-near-metric eps=X[,ratio=R][,seed=N]
//
// into a Config whose only active injection is the deterministic
// near-metric perturbation: distances shrink by up to eps/2 per pair
// (bounding every triangle's additive violation margin by eps, see
// Config.MarginBound) and, when ratio is given, additionally scale by a
// per-pair factor in (1/ratio, 1]. eps must be ≥ 0 and finite, ratio ≥ 1
// and finite, and at least one of them must be set; seed defaults to 1.
// Unknown keys, duplicates, and out-of-range values are rejected rather
// than ignored, the same fail-loudly contract as ParseSpec.
func ParseNearMetricSpec(spec string) (Config, error) {
	cfg := Config{Seed: 1}
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok || val == "" {
			return Config{}, fmt.Errorf("faultmetric: bad field %q in near-metric spec %q (want key=value)", field, spec)
		}
		if seen[key] {
			return Config{}, fmt.Errorf("faultmetric: duplicate key %q in near-metric spec %q", key, spec)
		}
		seen[key] = true
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faultmetric: bad seed %q: %v", val, err)
			}
			cfg.Seed = n
		case "eps":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faultmetric: bad eps %q: %v", val, err)
			}
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				return Config{}, fmt.Errorf("faultmetric: eps must be ≥ 0 and finite, got %v", p)
			}
			cfg.NearMetricEps = p
		case "ratio":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faultmetric: bad ratio %q: %v", val, err)
			}
			if !(r >= 1) || math.IsInf(r, 0) {
				return Config{}, fmt.Errorf("faultmetric: ratio must be ≥ 1 and finite, got %v", r)
			}
			cfg.NearMetricRatio = r
		default:
			return Config{}, fmt.Errorf("faultmetric: unknown key %q in near-metric spec %q (known: eps, ratio, seed)", key, spec)
		}
	}
	if !seen["eps"] && !seen["ratio"] {
		return Config{}, fmt.Errorf("faultmetric: near-metric spec %q needs at least one of eps, ratio", spec)
	}
	return cfg, nil
}
