package faultmetric

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"metricprox/internal/metric"
)

func unitSpace(n int) metric.Space {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{float64(i) / float64(n)}
	}
	return metric.NewVectors(pts, 2, 1)
}

// attemptTrace replays every (pair, attempt) outcome for a fixed schedule.
func attemptTrace(t *testing.T, cfg Config, pairs [][2]int, attempts int) []string {
	t.Helper()
	inj := New(unitSpace(16), cfg)
	var out []string
	for a := 0; a < attempts; a++ {
		for _, p := range pairs {
			d, err := inj.DistanceCtx(context.Background(), p[0], p[1])
			switch {
			case err != nil:
				out = append(out, "err:"+err.Error())
			case math.IsNaN(d):
				out = append(out, "nan")
			case d < 0:
				out = append(out, "neg")
			default:
				out = append(out, "ok")
			}
		}
	}
	return out
}

func TestDeterministicFromSeed(t *testing.T) {
	cfg := Config{Seed: 7, TransientRate: 0.3, RateLimitRate: 0.1, CorruptRate: 0.1}
	pairs := [][2]int{{0, 1}, {2, 3}, {4, 9}, {1, 7}}
	a := attemptTrace(t, cfg, pairs, 6)
	b := attemptTrace(t, cfg, pairs, 6)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}

	cfg.Seed = 8
	c := attemptTrace(t, cfg, pairs, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules (suspicious)")
	}
}

func TestInjectionKindsAndCounters(t *testing.T) {
	cfg := Config{Seed: 3, TransientRate: 0.4, RateLimitRate: 0.2, CorruptRate: 0.2}
	inj := New(unitSpace(32), cfg)
	var transients, ratelimits, corrupts, oks int64
	for i := 0; i < 32; i++ {
		for j := i + 1; j < 32; j++ {
			d, err := inj.DistanceCtx(context.Background(), i, j)
			switch {
			case errors.Is(err, ErrTransient):
				transients++
			case errors.Is(err, ErrRateLimited):
				ratelimits++
			case err != nil:
				t.Fatalf("unexpected error kind: %v", err)
			case math.IsNaN(d) || d < 0:
				corrupts++
			default:
				oks++
			}
		}
	}
	ct := inj.Counters()
	if ct.Transients != transients || ct.RateLimits != ratelimits || ct.Corrupts != corrupts {
		t.Fatalf("counters %+v disagree with observed (t=%d r=%d c=%d)", ct, transients, ratelimits, corrupts)
	}
	if ct.Calls != transients+ratelimits+corrupts+oks {
		t.Fatalf("Calls = %d, want %d", ct.Calls, transients+ratelimits+corrupts+oks)
	}
	if transients == 0 || ratelimits == 0 || corrupts == 0 {
		t.Fatalf("expected every injection kind to fire over 496 pairs: t=%d r=%d c=%d", transients, ratelimits, corrupts)
	}
	if ct.BadResponses() != transients+ratelimits+corrupts {
		t.Fatalf("BadResponses = %d, want %d", ct.BadResponses(), transients+ratelimits+corrupts)
	}
}

func TestOutageWindows(t *testing.T) {
	inj := New(unitSpace(8), Config{Seed: 1, OutagePeriod: 10, OutageLen: 3})
	var got []bool
	for c := 0; c < 30; c++ {
		_, err := inj.DistanceCtx(context.Background(), 0, 1)
		if err != nil && !errors.Is(err, ErrOutage) {
			t.Fatalf("call %d: unexpected error %v", c, err)
		}
		got = append(got, err != nil)
	}
	for c, down := range got {
		want := c%10 < 3
		if down != want {
			t.Fatalf("call %d: outage = %v, want %v", c, down, want)
		}
	}
	if ct := inj.Counters(); ct.Outages != 9 {
		t.Fatalf("Outages = %d, want 9", ct.Outages)
	}
}

func TestMaxFailuresPerPairGuaranteesSuccess(t *testing.T) {
	cfg := Config{Seed: 5, TransientRate: 1, MaxFailuresPerPair: 3}
	inj := New(unitSpace(8), cfg)
	for a := 0; a < 3; a++ {
		if _, err := inj.DistanceCtx(context.Background(), 2, 5); !errors.Is(err, ErrTransient) {
			t.Fatalf("attempt %d: err = %v, want ErrTransient", a, err)
		}
	}
	d, err := inj.DistanceCtx(context.Background(), 2, 5)
	if err != nil {
		t.Fatalf("attempt past the failure cap still failed: %v", err)
	}
	want := unitSpace(8).Distance(2, 5)
	if d != want {
		t.Fatalf("post-cap distance = %v, want %v", d, want)
	}
}

func TestLatencyHonoursContext(t *testing.T) {
	inj := New(unitSpace(8), Config{Seed: 2, Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := inj.DistanceCtx(ctx, 0, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	ct := inj.Counters()
	if ct.Latencies != 1 || ct.CtxCancels != 1 {
		t.Fatalf("counters = %+v, want one latency and one ctx cancel", ct)
	}
}

func TestCleanConfigPassesThrough(t *testing.T) {
	space := unitSpace(8)
	inj := New(space, Config{Seed: 9})
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			d, err := inj.DistanceCtx(context.Background(), i, j)
			if err != nil {
				t.Fatalf("clean injector failed: %v", err)
			}
			if want := space.Distance(i, j); d != want {
				t.Fatalf("Distance(%d,%d) = %v, want %v", i, j, d, want)
			}
		}
	}
}

func TestNearMetricPerturbation(t *testing.T) {
	n := 16
	cfg := Config{Seed: 11, NearMetricEps: 0.3}
	inj := New(unitSpace(n), cfg)
	base := unitSpace(n)
	ctx := context.Background()

	perturbed := make(map[[2]int]float64)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d, err := inj.DistanceCtx(ctx, i, j)
			if err != nil {
				t.Fatalf("DistanceCtx(%d,%d): %v", i, j, err)
			}
			orig := base.Distance(i, j)
			if d > orig {
				t.Fatalf("perturbation raised d(%d,%d): %v > %v", i, j, d, orig)
			}
			if d < 0 {
				t.Fatalf("perturbation went negative on (%d,%d): %v", i, j, d)
			}
			if orig-d > cfg.NearMetricEps/2 {
				t.Fatalf("per-pair shrink %v exceeds eps/2 = %v", orig-d, cfg.NearMetricEps/2)
			}
			perturbed[[2]int{i, j}] = d
		}
	}
	// Symmetry and retry-stability: the perturbation is per-pair, not
	// per-attempt, so replays see identical values.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d, err := inj.DistanceCtx(ctx, i, j)
			if err != nil {
				t.Fatal(err)
			}
			if d != perturbed[[2]int{i, j}] {
				t.Fatalf("replay of (%d,%d) changed: %v vs %v", i, j, d, perturbed[[2]int{i, j}])
			}
			if d != perturbed[[2]int{j, i}] {
				t.Fatalf("perturbation asymmetric on (%d,%d)", i, j)
			}
		}
	}
	// Margin bound: every triangle's additive violation ≤ MarginBound.
	bound := cfg.MarginBound()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				dij := perturbed[[2]int{i, j}]
				dik := perturbed[[2]int{i, k}]
				dkj := perturbed[[2]int{k, j}]
				if dij > dik+dkj+bound+1e-12 {
					t.Fatalf("triangle (%d,%d,%d) margin %v exceeds bound %v",
						i, j, k, dij-(dik+dkj), bound)
				}
			}
		}
	}
	if got := inj.Counters().Perturbations; got == 0 {
		t.Fatal("no perturbations counted despite eps > 0")
	}
	// There must be at least one actual triangle violation at this eps,
	// or the chaos strict-detect test would be vacuous.
	viol := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				if perturbed[[2]int{i, j}] > perturbed[[2]int{i, k}]+perturbed[[2]int{k, j}]+1e-9 {
					viol++
				}
			}
		}
	}
	if viol == 0 {
		t.Fatal("perturbation produced a perfect metric; injected eps too small to test anything")
	}
}

func TestNearMetricRatioBound(t *testing.T) {
	n := 12
	R := 1.5
	cfg := Config{Seed: 5, NearMetricRatio: R}
	inj := New(unitSpace(n), cfg)
	base := unitSpace(n)
	ctx := context.Background()
	d := func(i, j int) float64 {
		v, err := inj.DistanceCtx(ctx, i, j)
		if err != nil {
			t.Fatalf("DistanceCtx(%d,%d): %v", i, j, err)
		}
		return v
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := d(i, j)
			orig := base.Distance(i, j)
			if v > orig || v < orig/R-1e-12 {
				t.Fatalf("ratio perturbation out of [d/R, d] on (%d,%d): %v vs %v", i, j, v, orig)
			}
			for k := 0; k < n; k++ {
				if v > R*(d(i, k)+d(k, j))+1e-12 {
					t.Fatalf("triangle (%d,%d,%d) violates the ρ=%v contract", i, j, k, R)
				}
			}
		}
	}
}

func TestNearMetricOffIsIdentity(t *testing.T) {
	n := 8
	inj := New(unitSpace(n), Config{Seed: 3})
	base := unitSpace(n)
	ctx := context.Background()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d, err := inj.DistanceCtx(ctx, i, j)
			if err != nil {
				t.Fatal(err)
			}
			if d != base.Distance(i, j) {
				t.Fatalf("eps=0 injector changed d(%d,%d)", i, j)
			}
		}
	}
	if got := inj.Counters().Perturbations; got != 0 {
		t.Fatalf("Perturbations = %d with near-metric off", got)
	}
}
