package fcmp

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	if !Eq(0.5, 0.5+1e-12) {
		t.Error("Eq should absorb sub-Eps noise")
	}
	if Eq(0.5, 0.5+1e-6) {
		t.Error("Eq must distinguish differences above Eps")
	}
	if !Eq(0, 0) {
		t.Error("Eq(0,0) must hold")
	}
}

func TestExactEq(t *testing.T) {
	if !ExactEq(0.1+0.2, 0.1+0.2) {
		t.Error("identical expressions must be exactly equal")
	}
	// Force runtime float64 arithmetic: Go constant-folds 0.1+0.2 exactly,
	// so the classic mismatch only appears with variables.
	a, b := 0.1, 0.2
	if ExactEq(a+b, 0.3) {
		t.Error("0.1+0.2 is famously not exactly 0.3 in float64 arithmetic")
	}
	if ExactEq(math.NaN(), math.NaN()) {
		t.Error("NaN is not equal to itself; ExactEq must preserve IEEE semantics")
	}
}

func TestTieLess(t *testing.T) {
	cases := []struct {
		d1   float64
		id1  int
		d2   float64
		id2  int
		want bool
	}{
		{1, 0, 2, 1, true},  // distance decides
		{2, 0, 1, 1, false}, // distance decides
		{1, 3, 1, 7, true},  // tie broken by id
		{1, 7, 1, 3, false}, // tie broken by id
		{1, 5, 1, 5, false}, // strict order: equal is not less
	}
	for _, c := range cases {
		if got := TieLess(c.d1, c.id1, c.d2, c.id2); got != c.want {
			t.Errorf("TieLess(%v,%d,%v,%d) = %v, want %v", c.d1, c.id1, c.d2, c.id2, got, c.want)
		}
	}
	// TieLess must be a strict weak ordering usable by sort.Slice: check
	// asymmetry on a tie.
	if TieLess(1, 2, 1, 2) || !TieLess(1, 2, 1, 3) || TieLess(1, 3, 1, 2) {
		t.Error("TieLess tie handling is not a strict order")
	}
}
