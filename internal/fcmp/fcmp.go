// Package fcmp is the single sanctioned home of float64 distance
// comparison semantics.
//
// Distances flow through this library from different producers — oracle
// resolutions, bound arithmetic, cached replays — and the floatcmp
// analyzer (cmd/proxlint) forbids comparing them with raw == or != in
// non-test code. The three comparison disciplines that are actually
// sound live here instead:
//
//   - TieLess: the canonical (distance, id) total order used everywhere a
//     result list or candidate queue must be deterministic across bound
//     schemes, resolution orders, and worker counts.
//   - ExactEq: a deliberate bit-exact comparison, for invariants that are
//     exact by construction (a partial-graph weight replayed from the
//     same oracle, interval bounds that collapse to the resolved value,
//     output-identity checksums). Calling ExactEq is the greppable
//     declaration that exactness is intended, not accidental.
//   - Eq: tolerance-based equality for derived quantities that have been
//     through float arithmetic.
//
// This package is exempt from the floatcmp analyzer by construction; see
// internal/proxlint/floatcmp.
package fcmp

import "math"

// Eps is the default tolerance of Eq: loose enough to absorb one pass of
// float64 arithmetic over normalised ([0,1]-scaled) distances, tight
// enough to distinguish genuinely different distances in every dataset
// the experiments use.
const Eps = 1e-9

// Eq reports whether a and b are equal within Eps.
func Eq(a, b float64) bool { return math.Abs(a-b) <= Eps }

// ExactEq reports whether a and b are bit-exactly equal. Use it only
// where exactness holds by construction; the call site is the
// documentation that the comparison is deliberate.
func ExactEq(a, b float64) bool { return a == b }

// TieLess is the canonical (distance, id) ordering: ascending distance,
// ties broken by ascending id. Every deterministic result ordering in the
// library — kNN lists, candidate scans, index search results — must use
// this rule so that outputs are identical across bound schemes and
// resolution orders.
func TieLess(d1 float64, id1 int, d2 float64, id2 int) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return id1 < id2
}
