package bounds

// Bounder produces lower and upper bounds on unknown distances from the
// distances resolved so far. Implementations must be *sound*: for every
// pair, lb ≤ true distance ≤ ub under any metric consistent with the
// updates seen. They need not be tight.
type Bounder interface {
	// Name identifies the scheme in experiment reports.
	Name() string
	// Bounds returns current lower and upper bounds on dist(i, j).
	Bounds(i, j int) (lb, ub float64)
	// Update ingests a freshly resolved distance (the UPDATE PROBLEM).
	// The Session guarantees each unordered pair is reported once.
	Update(i, j int, d float64)
}

// BatchBounder is an optional Bounder extension for schemes that can
// answer many bound queries in one pass over their internal state. The
// canonical implementation is Tri, whose flat-row layout lets a batch
// grouped by anchor object stream each shared adjacency row through the
// cache once. BoundsBatch must write, for every x, exactly the interval
// Bounds(is[x], js[x]) would return — batching is a cost optimisation,
// never a semantic one; all four slices must share a length.
type BatchBounder interface {
	Bounder
	// BoundsBatch answers pair (is[x], js[x]) into lb[x], ub[x].
	BoundsBatch(is, js []int, lb, ub []float64)
}

// Comparator resolves distance comparisons directly, without going through
// explicit bounds. Implemented by DFT. All Prove* methods are one-sided:
// returning false means "could not prove", never "disproved".
type Comparator interface {
	// ProveLess reports whether dist(i,j) < dist(k,l) is certain.
	ProveLess(i, j, k, l int) bool
	// ProveLessC reports whether dist(i,j) < c is certain.
	ProveLessC(i, j int, c float64) bool
	// ProveGEC reports whether dist(i,j) ≥ c is certain.
	ProveGEC(i, j int, c float64) bool
}

// Bootstrapper is implemented by bound schemes that drive their own
// initialisation (e.g. TLAESA's pivot-tree construction, which spends
// extra oracle calls beyond the landmark rows). resolve must route through
// the Session so every call is counted and fed back via Update.
type Bootstrapper interface {
	Bootstrap(resolve func(i, j int) float64, landmarks []int)
}

// Noop is the bounder of the unmodified algorithm: it knows nothing.
type Noop struct {
	// MaxDist is the a-priori upper bound on any distance (1 in the
	// paper's normalised setting). Zero means 1.
	MaxDist float64
}

// NewNoop returns a Noop bounder with the given maximum distance.
func NewNoop(maxDist float64) *Noop { return &Noop{MaxDist: maxDist} }

// Name returns "noop".
func (nb *Noop) Name() string { return "noop" }

// Bounds returns the trivial bounds (0, MaxDist).
func (nb *Noop) Bounds(i, j int) (float64, float64) {
	if nb.MaxDist == 0 {
		return 0, 1
	}
	return 0, nb.MaxDist
}

// Update is a no-op.
func (nb *Noop) Update(i, j int, d float64) {}

// clamp narrows (lb, ub) into [0, maxDist] and repairs tiny floating-point
// inversions where lb exceeds ub by a rounding error.
func clamp(lb, ub, maxDist float64) (float64, float64) {
	if lb < 0 {
		lb = 0
	}
	if ub > maxDist {
		ub = maxDist
	}
	if lb > ub {
		// Rounding artefact: collapse to the midpoint ordering.
		lb = ub
	}
	return lb, ub
}
