package bounds

import (
	"math"

	"metricprox/internal/pgraph"
)

// LAESA is the landmark (pivot) baseline of Micó, Oncina & Vidal (1994).
// A set of k landmarks has its distance to every object resolved up front
// (the bootstrap, paid in oracle calls); afterwards any pair (i, j) is
// bounded through each landmark l:
//
//	lb = max_l |d(l,i) − d(l,j)|      ub = min_l d(l,i) + d(l,j)
//
// The scheme is static: resolved edges not incident to a landmark never
// improve its bounds, which is exactly the weakness the paper's dynamic
// schemes exploit. This implementation is slightly generous to the
// baseline: Update ingests *any* edge incident to a landmark, so landmark
// rows also fill in lazily if the proximity algorithm happens to resolve
// them.
type LAESA struct {
	n         int
	maxDist   float64
	landmarks []int
	landIdx   []int       // object -> row index, -1 if not a landmark
	rows      [][]float64 // rows[r][x] = d(landmark r, x); NaN if unknown
}

// NewLAESA returns a LAESA baseline with the given landmark objects. Rows
// are filled by Update calls (normally the Session bootstrap).
func NewLAESA(n int, landmarks []int, maxDist float64) *LAESA {
	l := &LAESA{
		n:         n,
		maxDist:   maxDist,
		landmarks: append([]int(nil), landmarks...),
		landIdx:   make([]int, n),
	}
	for i := range l.landIdx {
		l.landIdx[i] = -1
	}
	l.rows = make([][]float64, len(landmarks))
	for r, lm := range landmarks {
		l.landIdx[lm] = r
		row := make([]float64, n)
		for x := range row {
			row[x] = math.NaN()
		}
		row[lm] = 0
		l.rows[r] = row
	}
	return l
}

// Name returns "laesa".
func (l *LAESA) Name() string { return "laesa" }

// Landmarks returns the landmark objects.
func (l *LAESA) Landmarks() []int { return l.landmarks }

// Update stores d into the landmark rows when i or j is a landmark and is
// otherwise ignored (the static-baseline behaviour).
func (l *LAESA) Update(i, j int, d float64) {
	if r := l.landIdx[i]; r >= 0 {
		l.rows[r][j] = d
	}
	if r := l.landIdx[j]; r >= 0 {
		l.rows[r][i] = d
	}
}

// Bounds combines every landmark with complete information on the pair.
func (l *LAESA) Bounds(i, j int) (float64, float64) {
	if i == j {
		// A self-distance is identically 0; the landmark sums below would
		// report a loose nonzero upper bound (2·d(l,i)).
		return 0, 0
	}
	lb, ub := 0.0, l.maxDist
	for _, row := range l.rows {
		di, dj := row[i], row[j]
		if math.IsNaN(di) || math.IsNaN(dj) {
			continue
		}
		if d := math.Abs(di - dj); d > lb {
			lb = d
		}
		if s := di + dj; s < ub {
			ub = s
		}
	}
	return clamp(lb, ub, l.maxDist)
}

// TLAESA is the tree-extended landmark baseline (Micó, Oncina & Carrasco
// 1996). Beyond the flat LAESA pivot table it builds a two-level pivot
// hierarchy during bootstrap: every object is assigned to its nearest
// global landmark (free — the rows are known), each cluster elects a
// *local representative* (its member farthest from the landmark, a classic
// diverse-pivot rule), and the representative's distances to its cluster
// members and to the other representatives are resolved. That construction
// "incurs additional distance computations" (the paper's phrasing, ≈ n +
// C(k,2) extra calls) and buys strictly tighter bounds:
//
//   - intra-cluster pairs get a nearby pivot, whose difference bound
//     |d(r,i) − d(r,j)| is far tighter than any distant global landmark's;
//   - cross-cluster pairs get the chain bound through two representatives,
//     d(i,j) ≥ d(r_i, r_j) − d(r_i, i) − d(r_j, j), which is not dominated
//     because local rows are not global.
//
// CPU per query is higher than LAESA's O(k) scan — reproducing the paper's
// "TLAESA saves more calls than LAESA at more local computation".
type TLAESA struct {
	*LAESA
	cluster  []int       // object -> cluster (landmark index), -1 before bootstrap
	reps     []int       // cluster -> representative object, -1 if none
	repIdx   []int       // object -> rep row index, -1 if not a rep
	repRows  [][]float64 // repRows[r][x] = d(rep r, x) for x in r's cluster
	interRep [][]float64 // rep-to-rep distances
}

// NewTLAESA returns a TLAESA baseline with the given landmarks. Until
// Bootstrap runs it behaves exactly like LAESA.
func NewTLAESA(n int, landmarks []int, maxDist float64) *TLAESA {
	t := &TLAESA{
		LAESA:   NewLAESA(n, landmarks, maxDist),
		cluster: make([]int, n),
		repIdx:  make([]int, n),
	}
	for i := range t.cluster {
		t.cluster[i] = -1
		t.repIdx[i] = -1
	}
	k := len(landmarks)
	t.reps = make([]int, k)
	for c := range t.reps {
		t.reps[c] = -1
	}
	t.repRows = make([][]float64, k)
	t.interRep = make([][]float64, k)
	for r := range t.interRep {
		t.interRep[r] = make([]float64, k)
		for s := range t.interRep[r] {
			if r != s {
				t.interRep[r][s] = math.NaN()
			}
		}
	}
	return t
}

// Name returns "tlaesa".
func (t *TLAESA) Name() string { return "tlaesa" }

// Update feeds the landmark rows and, after bootstrap, the representative
// rows and inter-representative matrix.
func (t *TLAESA) Update(i, j int, d float64) {
	t.LAESA.Update(i, j, d)
	if r := t.repIdx[i]; r >= 0 && t.repRows[r] != nil {
		t.repRows[r][j] = d
	}
	if r := t.repIdx[j]; r >= 0 && t.repRows[r] != nil {
		t.repRows[r][i] = d
	}
	ri, rj := t.repIdx[i], t.repIdx[j]
	if ri >= 0 && rj >= 0 {
		t.interRep[ri][rj] = d
		t.interRep[rj][ri] = d
	}
}

// Bootstrap implements the Bootstrapper contract: resolve the global
// landmark rows, build the pivot tree, and resolve the representative
// rows, all through resolve so every call is accounted.
func (t *TLAESA) Bootstrap(resolve func(i, j int) float64, landmarks []int) {
	for _, e := range EdgesForBootstrap(t.n, landmarks) {
		resolve(e.U, e.V)
	}
	// Assign every object to its nearest landmark (no calls: rows known).
	for x := 0; x < t.n; x++ {
		best, bestD := -1, math.Inf(1)
		for r, row := range t.rows {
			if d := row[x]; !math.IsNaN(d) && d < bestD {
				best, bestD = r, d
			}
		}
		t.cluster[x] = best
	}
	// Elect each cluster's representative: the member farthest from its
	// landmark (diverse-pivot rule), excluding the landmark itself.
	for c := range t.reps {
		far, farD := -1, -1.0
		for x := 0; x < t.n; x++ {
			if t.cluster[x] != c || t.landIdx[x] >= 0 {
				continue
			}
			if d := t.rows[c][x]; d > farD {
				far, farD = x, d
			}
		}
		if far == -1 {
			continue // cluster has no non-landmark members
		}
		t.reps[c] = far
		t.repIdx[far] = c
		row := make([]float64, t.n)
		for x := range row {
			row[x] = math.NaN()
		}
		row[far] = 0
		t.repRows[c] = row
	}
	// Resolve representative-to-member and rep-to-rep distances (the
	// "additional distance computations" of tree construction).
	for c, rep := range t.reps {
		if rep == -1 {
			continue
		}
		for x := 0; x < t.n; x++ {
			if x != rep && t.cluster[x] == c {
				resolve(rep, x)
			}
		}
		for c2 := c + 1; c2 < len(t.reps); c2++ {
			if t.reps[c2] != -1 {
				resolve(rep, t.reps[c2])
			}
		}
	}
}

// Bounds refines the LAESA bounds with the pivot tree.
func (t *TLAESA) Bounds(i, j int) (float64, float64) {
	if i == j {
		return 0, 0
	}
	lb, ub := t.LAESA.Bounds(i, j)
	ci, cj := t.cluster[i], t.cluster[j]
	if ci >= 0 && ci == cj && t.repRows[ci] != nil {
		row := t.repRows[ci]
		di, dj := row[i], row[j]
		if !math.IsNaN(di) && !math.IsNaN(dj) {
			if d := math.Abs(di - dj); d > lb {
				lb = d
			}
			if s := di + dj; s < ub {
				ub = s
			}
		}
	} else if ci >= 0 && cj >= 0 && t.repRows[ci] != nil && t.repRows[cj] != nil {
		di := t.repRows[ci][i]
		dj := t.repRows[cj][j]
		drr := t.interRep[ci][cj]
		if !math.IsNaN(di) && !math.IsNaN(dj) && !math.IsNaN(drr) {
			if v := drr - di - dj; v > lb {
				lb = v
			}
			if v := di + drr + dj; v < ub {
				ub = v
			}
		}
	}
	return clamp(lb, ub, t.maxDist)
}

// EdgesForBootstrap returns, for a landmark set, the list of pairs a
// Session bootstrap must resolve: every (landmark, object) pair, each
// unordered pair once. The count is k·n − k − C(k,2), matching the
// Bootstrap column of the paper's Tables 2–3.
func EdgesForBootstrap(n int, landmarks []int) []pgraph.Edge {
	isLand := make([]bool, n)
	for _, l := range landmarks {
		isLand[l] = true
	}
	var out []pgraph.Edge
	for idx, l := range landmarks {
		for x := 0; x < n; x++ {
			if x == l {
				continue
			}
			// Deduplicate landmark-landmark pairs: emit only from the
			// lower-indexed landmark.
			if isLand[x] {
				lower := true
				for _, prev := range landmarks[:idx] {
					if prev == x {
						lower = false
						break
					}
				}
				if !lower {
					continue
				}
			}
			out = append(out, pgraph.Edge{U: l, V: x})
		}
	}
	return out
}
