package bounds

// Hybrid composes a cheap bounder with a tight one: every query asks the
// cheap scheme first and escalates to the expensive scheme only when the
// cheap interval is wider than Gap. This is the natural middle ground the
// paper's Tri-vs-SPLUB trade-off suggests (DESIGN.md §9 lists it as an
// ablation): most comparisons are decided by triangles alone, and the
// Dijkstra-grade machinery only runs on the hard residue.
//
// The intersected interval is sound because both inputs are sound, and at
// least as tight as the cheap bounder's alone.
type Hybrid struct {
	Cheap Bounder
	Tight Bounder
	// Gap is the cheap-interval width above which the tight bounder is
	// consulted. 0 escalates every query; MaxDist never escalates.
	Gap float64

	queries     int64
	escalations int64
}

// NewHybrid returns a Hybrid bounder. Both inputs must be fed the same
// updates; when they share a partial graph (SPLUB and Tri do), Update's
// forwarding is naturally idempotent.
func NewHybrid(cheap, tight Bounder, gap float64) *Hybrid {
	return &Hybrid{Cheap: cheap, Tight: tight, Gap: gap}
}

// Name returns "hybrid(cheap+tight)".
func (h *Hybrid) Name() string {
	return "hybrid(" + h.Cheap.Name() + "+" + h.Tight.Name() + ")"
}

// Escalations returns how many queries consulted the tight bounder.
func (h *Hybrid) Escalations() (queries, escalations int64) {
	return h.queries, h.escalations
}

// Update forwards to both bounders.
func (h *Hybrid) Update(i, j int, d float64) {
	h.Cheap.Update(i, j, d)
	h.Tight.Update(i, j, d)
}

// Bounds asks the cheap bounder, escalating when its interval is loose.
func (h *Hybrid) Bounds(i, j int) (float64, float64) {
	if i == j {
		// Self-distances are identically 0; never an escalation.
		return 0, 0
	}
	h.queries++
	lb, ub := h.Cheap.Bounds(i, j)
	if ub-lb <= h.Gap {
		return lb, ub
	}
	h.escalations++
	lb2, ub2 := h.Tight.Bounds(i, j)
	if lb2 > lb {
		lb = lb2
	}
	if ub2 < ub {
		ub = ub2
	}
	if lb > ub {
		lb = ub // rounding guard, mirrors clamp
	}
	return lb, ub
}
