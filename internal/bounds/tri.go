package bounds

import "metricprox/internal/pgraph"

// Tri is the Triangle Induced Solution Scheme of Section 4.2
// (Algorithm 2). For an unknown edge (i, j) it inspects only the triangles
// (i, j, l) whose other two sides are known:
//
//	lb = max over common neighbours l of |w(i,l) − w(j,l)|
//	ub = min over common neighbours l of  w(i,l) + w(j,l)
//
// The common neighbours come from intersecting the two flat adjacency
// rows of the partial graph's CSR store. Rather than a two-cursor sorted
// merge (whose key comparisons are data-dependent branches the CPU cannot
// predict), the intersection stamps one row into per-object scratch and
// probes the other — two sequential scans with one predictable test each,
// no per-query allocation. Expected query cost stays O(deg i + deg j) =
// O(m/n) (Theorem 4.2); updates are the sorted-run insertions done by the
// shared partial graph.
//
// The bounds are looser than SPLUB's — only paths of length 2 are
// considered — but queries avoid both Dijkstra bottlenecks, which is why
// the paper crowns Tri the practical choice for large instances.
type Tri struct {
	g       *pgraph.Graph
	maxDist float64
	rho     float64 // relaxation factor; 1 = true metric

	// Intersection scratch, sized n at construction: stamp[v] == qid
	// marks v as a neighbour of the currently stamped row and pos[v]
	// remembers where, so a probe of the other row finds each common
	// neighbour in O(1) with no clearing between queries (qid advances
	// instead). Guarded by the session lock like the graph itself.
	stamp []uint64
	pos   []int32
	qid   uint64

	// order and cnt are reusable scratch for BoundsBatch's anchor-grouping
	// counting sort, allocation-free once warm.
	order []int32
	cnt   []int32
}

// NewTri returns a Tri bounder over the given partial graph.
func NewTri(g *pgraph.Graph, maxDist float64) *Tri {
	return NewTriRelaxed(g, maxDist, 1)
}

// NewTriRelaxed returns a Tri bounder for a ρ-relaxed metric — a distance
// obeying d(x,z) ≤ ρ·(d(x,y) + d(y,z)) for some ρ ≥ 1, the generalised
// setting the paper's Characteristic 1 admits. Squared Euclidean distance
// is the canonical example (ρ = 2). The triangle bounds weaken accordingly:
//
//	lb = max over common neighbours l of max(w(i,l)/ρ − w(j,l), w(j,l)/ρ − w(i,l))
//	ub = min over common neighbours l of ρ·(w(i,l) + w(j,l))
//
// With ρ = 1 these are exactly Algorithm 2's bounds.
func NewTriRelaxed(g *pgraph.Graph, maxDist, rho float64) *Tri {
	if rho < 1 {
		panic("bounds: relaxation factor must be at least 1")
	}
	return &Tri{
		g:       g,
		maxDist: maxDist,
		rho:     rho,
		stamp:   make([]uint64, g.N()),
		pos:     make([]int32, g.N()),
	}
}

// Name returns "tri".
func (t *Tri) Name() string { return "tri" }

// Update records the resolved edge in the shared partial graph.
func (t *Tri) Update(i, j int, d float64) { t.g.AddEdge(i, j, d) }

// Bounds implements Algorithm 2 (Tri Scheme).
func (t *Tri) Bounds(i, j int) (float64, float64) {
	if i == j {
		return 0, 0
	}
	if w, ok := t.g.Weight(i, j); ok {
		return w, w
	}
	ni, wi := t.g.Row(i)
	nj, wj := t.g.Row(j)
	if len(nj) < len(ni) {
		// Stamp the smaller row, probe the larger: both bound formulas
		// are symmetric in the pair, so the swap changes no answer.
		ni, wi, nj, wj = nj, wj, ni, wi
	}
	t.mark(ni)
	lb, ub := t.probe(wi, nj, wj)
	return clamp(lb, ub, t.maxDist)
}

// mark stamps row ni into the intersection scratch under a fresh query
// id. A later probe recognises exactly these neighbours; stale stamps
// from earlier queries fail the qid test and never need clearing.
func (t *Tri) mark(ni []int32) {
	t.qid++
	for x, v := range ni {
		t.stamp[v] = t.qid
		t.pos[v] = int32(x)
	}
}

// probe scans row nj against the stamped row: every hit is a common
// neighbour — a triangle whose other two sides are known — and
// contributes one candidate interval. wi indexes by the stamped row's
// positions, wj by nj's. Common neighbours are visited in ascending id
// order (nj is sorted), the same order the sorted merge produced, so the
// accumulated interval is bit-identical to the merge's.
func (t *Tri) probe(wi []float64, nj []int32, wj []float64) (lb, ub float64) {
	lb, ub = 0, t.maxDist
	qid, stamp := t.qid, t.stamp
	if t.rho == 1 {
		// True-metric fast path: with ρ = 1 the relaxed formulas below
		// reduce exactly (x/1 and 1·x are IEEE identities), and the two
		// divisions per triangle disappear from the hot loop.
		for y, v := range nj {
			if stamp[v] == qid {
				a, b := wi[t.pos[v]], wj[y]
				if d := a - b; d > lb {
					lb = d
				} else if d := b - a; d > lb {
					lb = d
				}
				if s := a + b; s < ub {
					ub = s
				}
			}
		}
		return lb, ub
	}
	for y, v := range nj {
		if stamp[v] == qid {
			a, b := wi[t.pos[v]], wj[y]
			if d := a/t.rho - b; d > lb {
				lb = d
			} else if d := b/t.rho - a; d > lb {
				lb = d
			}
			if s := t.rho * (a + b); s < ub {
				ub = s
			}
		}
	}
	return lb, ub
}

// BoundsBatch implements BatchBounder: it answers every (is[x], js[x])
// pair, writing into lb[x]/ub[x]. Queries are processed grouped by their
// anchor (first) row, which is stamped into the intersection scratch once
// per group — a batch probing many pairs that share an anchor object, the
// shape the service's /batch endpoint and the prox builders'
// PrefetchBounds emit, pays each anchor row once instead of once per
// pair. Resolved pairs and self-pairs answer exactly, like Bounds.
func (t *Tri) BoundsBatch(is, js []int, lb, ub []float64) {
	if len(is) != len(js) || len(is) != len(lb) || len(is) != len(ub) {
		panic("bounds: BoundsBatch slice lengths differ")
	}
	// Group queries by their anchor row with a stable counting sort —
	// O(n + q) integer passes, far cheaper than a comparison sort and
	// allocation-free once the scratch is warm.
	n := t.g.N()
	if cap(t.cnt) < n+1 {
		t.cnt = make([]int32, n+1)
	}
	cnt := t.cnt[:n+1]
	for x := range cnt {
		cnt[x] = 0
	}
	for _, i := range is {
		cnt[i+1]++
	}
	for x := 1; x <= n; x++ {
		cnt[x] += cnt[x-1]
	}
	if cap(t.order) < len(is) {
		t.order = make([]int32, len(is))
	}
	order := t.order[:len(is)]
	for x, i := range is {
		order[cnt[i]] = int32(x)
		cnt[i]++
	}
	anchor := -1
	var wa []float64
	for _, q := range order {
		i, j := is[q], js[q]
		if i == j {
			lb[q], ub[q] = 0, 0
			continue
		}
		if w, ok := t.g.Weight(i, j); ok {
			lb[q], ub[q] = w, w
			continue
		}
		if i != anchor {
			anchor = i
			var na []int32
			na, wa = t.g.Row(i)
			t.mark(na)
		}
		nj, wj := t.g.Row(j)
		l, u := t.probe(wa, nj, wj)
		lb[q], ub[q] = clamp(l, u, t.maxDist)
	}
}
