package bounds

import "metricprox/internal/pgraph"

// Tri is the Triangle Induced Solution Scheme of Section 4.2
// (Algorithm 2). For an unknown edge (i, j) it inspects only the triangles
// (i, j, l) whose other two sides are known:
//
//	lb = max over common neighbours l of |w(i,l) − w(j,l)|
//	ub = min over common neighbours l of  w(i,l) + w(j,l)
//
// The common neighbours are found by merging the two sorted adjacency
// structures (red–black trees) in key order, exactly as the paper's
// balanced-BST design. Expected query cost is O(m/n) (Theorem 4.2); updates
// are the O(log n) tree insertions done by the shared partial graph.
//
// The bounds are looser than SPLUB's — only paths of length 2 are
// considered — but queries avoid both Dijkstra bottlenecks, which is why
// the paper crowns Tri the practical choice for large instances.
type Tri struct {
	g       *pgraph.Graph
	maxDist float64
	rho     float64 // relaxation factor; 1 = true metric
}

// NewTri returns a Tri bounder over the given partial graph.
func NewTri(g *pgraph.Graph, maxDist float64) *Tri {
	return NewTriRelaxed(g, maxDist, 1)
}

// NewTriRelaxed returns a Tri bounder for a ρ-relaxed metric — a distance
// obeying d(x,z) ≤ ρ·(d(x,y) + d(y,z)) for some ρ ≥ 1, the generalised
// setting the paper's Characteristic 1 admits. Squared Euclidean distance
// is the canonical example (ρ = 2). The triangle bounds weaken accordingly:
//
//	lb = max over common neighbours l of max(w(i,l)/ρ − w(j,l), w(j,l)/ρ − w(i,l))
//	ub = min over common neighbours l of ρ·(w(i,l) + w(j,l))
//
// With ρ = 1 these are exactly Algorithm 2's bounds.
func NewTriRelaxed(g *pgraph.Graph, maxDist, rho float64) *Tri {
	if rho < 1 {
		panic("bounds: relaxation factor must be at least 1")
	}
	return &Tri{g: g, maxDist: maxDist, rho: rho}
}

// Name returns "tri".
func (t *Tri) Name() string { return "tri" }

// Update records the resolved edge in the shared partial graph.
func (t *Tri) Update(i, j int, d float64) { t.g.AddEdge(i, j, d) }

// Bounds implements Algorithm 2 (Tri Scheme).
func (t *Tri) Bounds(i, j int) (float64, float64) {
	if w, ok := t.g.Weight(i, j); ok {
		return w, w
	}
	lb, ub := 0.0, t.maxDist

	// Sorted merge of both adjacency trees, visiting exactly the common
	// neighbours — the triangles whose other two sides are known.
	ai, aj := t.g.Adjacency(i), t.g.Adjacency(j)
	iti, itj := ai.Iter(), aj.Iter()
	ki, wi, oki := iti.Next()
	kj, wj, okj := itj.Next()
	for oki && okj {
		switch {
		case ki == kj:
			if d := wi/t.rho - wj; d > lb {
				lb = d
			} else if d := wj/t.rho - wi; d > lb {
				lb = d
			}
			if s := t.rho * (wi + wj); s < ub {
				ub = s
			}
			ki, wi, oki = iti.Next()
			kj, wj, okj = itj.Next()
		case ki < kj:
			ki, wi, oki = iti.Next()
		default:
			kj, wj, okj = itj.Next()
		}
	}
	return clamp(lb, ub, t.maxDist)
}
