package bounds

import (
	"math"
	"math/rand"
	"testing"

	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/pgraph"
)

// figure1 rebuilds the paper's running example (the 7-object partial graph
// of Figure 1) with this repository's weights. Returns the graph-backed
// bounders plus the ground-truth edge list.
func figure1() *pgraph.Graph {
	g := pgraph.New(7)
	g.AddEdge(1, 3, 0.8)
	g.AddEdge(3, 4, 0.1)
	g.AddEdge(2, 3, 0.3)
	g.AddEdge(2, 4, 0.4)
	g.AddEdge(1, 5, 0.2)
	g.AddEdge(2, 5, 0.9)
	g.AddEdge(0, 6, 0.5)
	g.AddEdge(0, 1, 0.7)
	return g
}

func TestSPLUBPaperExample(t *testing.T) {
	// Section 3.1: with d(1,3)=0.8 and d(3,4)=0.1 the tightest bounds for
	// d(1,4) are [0.7, 0.9].
	g := figure1()
	s := NewSPLUB(g, 1)
	lb, ub := s.Bounds(1, 4)
	if math.Abs(lb-0.7) > 1e-12 || math.Abs(ub-0.9) > 1e-12 {
		t.Fatalf("Bounds(1,4) = [%v,%v], want [0.7,0.9]", lb, ub)
	}
}

func TestTriPaperExample(t *testing.T) {
	g := figure1()
	tri := NewTri(g, 1)
	// (3,5): common neighbours 1 and 2.
	// Via 1: |0.8−0.2| = 0.6, 0.8+0.2 = 1.0. Via 2: |0.3−0.9| = 0.6, 1.2.
	lb, ub := tri.Bounds(3, 5)
	if math.Abs(lb-0.6) > 1e-12 || math.Abs(ub-1.0) > 1e-12 {
		t.Fatalf("Bounds(3,5) = [%v,%v], want [0.6,1.0]", lb, ub)
	}
	// (1,4): common neighbour 3 only: [0.7, 0.9].
	lb, ub = tri.Bounds(1, 4)
	if math.Abs(lb-0.7) > 1e-12 || math.Abs(ub-0.9) > 1e-12 {
		t.Fatalf("Bounds(1,4) = [%v,%v], want [0.7,0.9]", lb, ub)
	}
	// (0,3): common neighbour 1: [|0.7−0.8|, min(1, 0.7+0.8)] = [0.1, 1].
	lb, ub = tri.Bounds(0, 3)
	if math.Abs(lb-0.1) > 1e-12 || ub != 1 {
		t.Fatalf("Bounds(0,3) = [%v,%v], want [0.1,1]", lb, ub)
	}
	// A pair with no common neighbour gets the trivial interval.
	lb, ub = tri.Bounds(0, 4)
	if lb != 0 || ub != 1 {
		t.Fatalf("Bounds(0,4) = [%v,%v], want [0,1]", lb, ub)
	}
}

func TestKnownEdgeIsExactEverywhere(t *testing.T) {
	g := figure1()
	for _, b := range []Bounder{NewSPLUB(g, 1), NewTri(g, 1)} {
		lb, ub := b.Bounds(1, 3)
		if lb != 0.8 || ub != 0.8 {
			t.Fatalf("%s: known edge bounds [%v,%v], want [0.8,0.8]", b.Name(), lb, ub)
		}
	}
	adm := NewADM(7, 1)
	for _, e := range g.Edges() {
		adm.Update(e.U, e.V, e.W)
	}
	if lb, ub := adm.Bounds(1, 3); lb != 0.8 || ub != 0.8 {
		t.Fatalf("adm: known edge bounds [%v,%v]", lb, ub)
	}
}

// buildAll constructs one of every bounder over n objects, fed by the same
// update stream.
func buildAll(n int, landmarks []int) (map[string]Bounder, func(i, j int, d float64)) {
	g := pgraph.New(n)
	bs := map[string]Bounder{
		"noop":   NewNoop(1),
		"splub":  NewSPLUB(g, 1),
		"tri":    NewTri(g, 1),
		"adm":    NewADM(n, 1),
		"laesa":  NewLAESA(n, landmarks, 1),
		"tlaesa": NewTLAESA(n, landmarks, 1),
	}
	update := func(i, j int, d float64) {
		g.AddEdge(i, j, d) // shared by splub and tri
		bs["adm"].Update(i, j, d)
		bs["laesa"].Update(i, j, d)
		bs["tlaesa"].Update(i, j, d)
	}
	return bs, update
}

func TestSoundnessAllBounders(t *testing.T) {
	// Property: at every prefix of a random reveal order, every bounder
	// brackets the true distance of every pair.
	for trial := 0; trial < 8; trial++ {
		seed := int64(100 + trial)
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(10)
		m := datasets.RandomMetric(n, seed)
		landmarks := rng.Perm(n)[:3]
		bs, update := buildAll(n, landmarks)

		var pairs [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs = append(pairs, [2]int{i, j})
			}
		}
		rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })

		for step, p := range pairs {
			update(p[0], p[1], m.Distance(p[0], p[1]))
			if step%7 != 0 {
				continue // check every few steps to keep runtime sane
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					d := m.Distance(i, j)
					for name, b := range bs {
						lb, ub := b.Bounds(i, j)
						if lb > d+1e-9 || ub < d-1e-9 {
							t.Fatalf("seed %d step %d: %s bounds [%v,%v] exclude true %v for (%d,%d)",
								seed, step, name, lb, ub, d, i, j)
						}
					}
				}
			}
		}
	}
}

func TestSPLUBEqualsADM(t *testing.T) {
	// The paper's claim (Summary of Results, point 2): SPLUB produces
	// exactly the bounds of ADM.
	for trial := 0; trial < 6; trial++ {
		seed := int64(500 + trial)
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		m := datasets.RandomMetric(n, seed)
		g := pgraph.New(n)
		splub := NewSPLUB(g, 1)
		adm := NewADM(n, 1)
		for e := 0; e < 2*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j || g.Known(i, j) {
				continue
			}
			d := m.Distance(i, j)
			g.AddEdge(i, j, d)
			adm.Update(i, j, d)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				slb, sub := splub.Bounds(i, j)
				alb, aub := adm.Bounds(i, j)
				if math.Abs(slb-alb) > 1e-9 || math.Abs(sub-aub) > 1e-9 {
					t.Fatalf("seed %d (%d,%d): splub [%v,%v] != adm [%v,%v]",
						seed, i, j, slb, sub, alb, aub)
				}
			}
		}
	}
}

func TestTriNoTighterThanSPLUB(t *testing.T) {
	// Tri restricts Equation 4 to paths of length 2, so its interval must
	// contain SPLUB's.
	for trial := 0; trial < 6; trial++ {
		seed := int64(900 + trial)
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		m := datasets.RandomMetric(n, seed)
		g := pgraph.New(n)
		splub, tri := NewSPLUB(g, 1), NewTri(g, 1)
		for e := 0; e < 3*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j || g.Known(i, j) {
				continue
			}
			g.AddEdge(i, j, m.Distance(i, j))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				slb, sub := splub.Bounds(i, j)
				tlb, tub := tri.Bounds(i, j)
				if tlb > slb+1e-9 || tub < sub-1e-9 {
					t.Fatalf("seed %d (%d,%d): tri [%v,%v] tighter than splub [%v,%v]",
						seed, i, j, tlb, tub, slb, sub)
				}
			}
		}
	}
}

func TestTLAESANoLooserThanLAESA(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		seed := int64(1300 + trial)
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(8)
		m := datasets.RandomMetric(n, seed)
		landmarks := rng.Perm(n)[:4]
		la := NewLAESA(n, landmarks, 1)
		tla := NewTLAESA(n, landmarks, 1)
		for _, e := range EdgesForBootstrap(n, landmarks) {
			la.Update(e.U, e.V, m.Distance(e.U, e.V))
		}
		tla.Bootstrap(func(i, j int) float64 {
			d := m.Distance(i, j)
			tla.Update(i, j, d)
			return d
		}, landmarks)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				llb, lub := la.Bounds(i, j)
				tlb, tub := tla.Bounds(i, j)
				if tlb < llb-1e-9 || tub > lub+1e-9 {
					t.Fatalf("seed %d (%d,%d): tlaesa [%v,%v] looser than laesa [%v,%v]",
						seed, i, j, tlb, tub, llb, lub)
				}
			}
		}
	}
}

func TestLAESAHandSized(t *testing.T) {
	// 3 collinear points under L1: d(0,1)=0.2, d(1,2)=0.3, d(0,2)=0.5,
	// landmark {0}. Bounds for (1,2): lb = |0.2−0.5| = 0.3, ub = 0.7.
	pts := [][]float64{{0}, {0.2}, {0.5}}
	v := metric.NewVectors(pts, 1, 1)
	la := NewLAESA(3, []int{0}, 1)
	la.Update(0, 1, v.Distance(0, 1))
	la.Update(0, 2, v.Distance(0, 2))
	lb, ub := la.Bounds(1, 2)
	if math.Abs(lb-0.3) > 1e-12 || math.Abs(ub-0.7) > 1e-12 {
		t.Fatalf("Bounds(1,2) = [%v,%v], want [0.3,0.7]", lb, ub)
	}
	// Pair involving the landmark itself is exact.
	lb, ub = la.Bounds(0, 2)
	if lb != 0.5 || ub != 0.5 {
		t.Fatalf("Bounds(0,2) = [%v,%v], want exact 0.5", lb, ub)
	}
}

func TestEdgesForBootstrapCount(t *testing.T) {
	// The paper's Bootstrap column: k·n − k − C(k,2) resolutions.
	cases := []struct{ n, k, want int }{
		{64, 6, 363},
		{128, 7, 868},
		{256, 8, 2012},
		{512, 9, 4563},
		{1000, 10, 9945},
	}
	for _, c := range cases {
		landmarks := make([]int, c.k)
		for i := range landmarks {
			landmarks[i] = i * (c.n / c.k)
		}
		got := len(EdgesForBootstrap(c.n, landmarks))
		if got != c.want {
			t.Errorf("n=%d k=%d: bootstrap edges %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestNoopBounds(t *testing.T) {
	nb := NewNoop(0.5)
	if lb, ub := nb.Bounds(0, 1); lb != 0 || ub != 0.5 {
		t.Fatalf("Bounds = [%v,%v], want [0,0.5]", lb, ub)
	}
	zero := &Noop{}
	if _, ub := zero.Bounds(0, 1); ub != 1 {
		t.Fatalf("zero-value Noop ub = %v, want 1", ub)
	}
}

func TestDFTNeverLies(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		seed := int64(2100 + trial)
		rng := rand.New(rand.NewSource(seed))
		n := 6
		m := datasets.RandomMetric(n, seed)
		d := NewDFT(n, 1)
		// Reveal half the edges.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					d.Update(i, j, m.Distance(i, j))
				}
			}
		}
		for probe := 0; probe < 60; probe++ {
			i, j := rng.Intn(n), rng.Intn(n)
			k, l := rng.Intn(n), rng.Intn(n)
			if i == j || k == l {
				continue
			}
			if d.ProveLess(i, j, k, l) && !(m.Distance(i, j) < m.Distance(k, l)) {
				t.Fatalf("seed %d: ProveLess(%d,%d,%d,%d) lied: %v vs %v",
					seed, i, j, k, l, m.Distance(i, j), m.Distance(k, l))
			}
			c := rng.Float64()
			if d.ProveLessC(i, j, c) && !(m.Distance(i, j) < c) {
				t.Fatalf("seed %d: ProveLessC(%d,%d,%v) lied: d=%v", seed, i, j, c, m.Distance(i, j))
			}
			if d.ProveGEC(i, j, c) && !(m.Distance(i, j) >= c) {
				t.Fatalf("seed %d: ProveGEC(%d,%d,%v) lied: d=%v", seed, i, j, c, m.Distance(i, j))
			}
		}
	}
}

func TestDFTSubsumesSPLUB(t *testing.T) {
	// Whenever SPLUB's tightest bounds decide a comparison, DFT must
	// decide it too (the LP reasons over the full joint polytope).
	seed := int64(3001)
	rng := rand.New(rand.NewSource(seed))
	n := 6
	m := datasets.RandomMetric(n, seed)
	g := pgraph.New(n)
	splub := NewSPLUB(g, 1)
	dft := NewDFT(n, 1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.5 {
				d := m.Distance(i, j)
				g.AddEdge(i, j, d)
				dft.Update(i, j, d)
			}
		}
	}
	checked := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := 0; k < n; k++ {
				for l := k + 1; l < n; l++ {
					if (i == k && j == l) || g.Known(i, j) || g.Known(k, l) {
						continue
					}
					_, ubIJ := splub.Bounds(i, j)
					lbKL, _ := splub.Bounds(k, l)
					if ubIJ < lbKL && !dft.ProveLess(i, j, k, l) {
						t.Fatalf("splub decided (%d,%d)<(%d,%d) but DFT could not", i, j, k, l)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no comparisons exercised")
	}
}

func TestDFTUpdateIdempotent(t *testing.T) {
	d := NewDFT(4, 1)
	rows := d.prob.NumRows()
	d.Update(0, 1, 0.4)
	after := d.prob.NumRows()
	d.Update(0, 1, 0.4) // duplicate must not add rows
	if d.prob.NumRows() != after {
		t.Fatalf("duplicate update added rows: %d -> %d", after, d.prob.NumRows())
	}
	if after != rows+2 {
		t.Fatalf("equality should add 2 rows, added %d", after-rows)
	}
}

func TestSPLUBTightestUBMatchesBounds(t *testing.T) {
	g := figure1()
	s := NewSPLUB(g, 1)
	for i := 0; i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			_, ub := s.Bounds(i, j)
			if got := s.TightestUB(i, j); math.Abs(got-ub) > 1e-12 {
				t.Fatalf("TightestUB(%d,%d) = %v, Bounds ub = %v", i, j, got, ub)
			}
		}
	}
}
