package bounds

import (
	"math"
	"math/rand"
	"testing"

	"metricprox/internal/datasets"
	"metricprox/internal/pgraph"
)

func TestHybridSoundAndTighterThanCheap(t *testing.T) {
	for trial := int64(0); trial < 5; trial++ {
		m := datasets.RandomMetric(16, 1600+trial)
		g := pgraph.New(16)
		h := NewHybrid(NewTri(g, 1), NewSPLUB(g, 1), 0.1)
		tri := NewTri(g, 1)
		rng := rand.New(rand.NewSource(trial))
		for e := 0; e < 40; e++ {
			i, j := rng.Intn(16), rng.Intn(16)
			if i == j || g.Known(i, j) {
				continue
			}
			h.Update(i, j, m.Distance(i, j))
		}
		for i := 0; i < 16; i++ {
			for j := i + 1; j < 16; j++ {
				lb, ub := h.Bounds(i, j)
				d := m.Distance(i, j)
				if lb > d+1e-9 || ub < d-1e-9 {
					t.Fatalf("hybrid unsound at (%d,%d): [%v,%v] excludes %v", i, j, lb, ub, d)
				}
				clb, cub := tri.Bounds(i, j)
				if lb < clb-1e-12 || ub > cub+1e-12 {
					t.Fatalf("hybrid looser than its cheap input at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestHybridEscalationPolicy(t *testing.T) {
	m := datasets.RandomMetric(20, 1700)
	g := pgraph.New(20)
	// Gap = maxDist: never escalate.
	never := NewHybrid(NewTri(g, 1), NewSPLUB(g, 1), 1)
	// Gap = 0: always escalate (on unknown pairs the Tri interval has
	// positive width unless a triangle pins it exactly).
	always := NewHybrid(NewTri(g, 1), NewSPLUB(g, 1), 0)
	rng := rand.New(rand.NewSource(3))
	for e := 0; e < 30; e++ {
		i, j := rng.Intn(20), rng.Intn(20)
		if i == j || g.Known(i, j) {
			continue
		}
		never.Update(i, j, m.Distance(i, j))
	}
	probes := 0
	for i := 0; i < 20 && probes < 50; i++ {
		for j := i + 1; j < 20 && probes < 50; j++ {
			if g.Known(i, j) {
				continue
			}
			never.Bounds(i, j)
			always.Bounds(i, j)
			probes++
		}
	}
	if _, esc := never.Escalations(); esc != 0 {
		t.Fatalf("gap=maxDist escalated %d times", esc)
	}
	q, esc := always.Escalations()
	if esc != q {
		t.Fatalf("gap=0 escalated %d of %d queries, want all", esc, q)
	}
	if name := never.Name(); name != "hybrid(tri+splub)" {
		t.Fatalf("Name = %q", name)
	}
}

func TestDFTCompletion(t *testing.T) {
	m := datasets.RandomMetric(6, 1800)
	d := NewDFT(6, 1)
	rng := rand.New(rand.NewSource(5))
	for e := 0; e < 7; e++ {
		i, j := rng.Intn(6), rng.Intn(6)
		if i != j {
			d.Update(i, j, m.Distance(i, j))
		}
	}
	comp, ok := d.Completion()
	if !ok {
		t.Fatal("consistent knowledge reported contradictory")
	}
	// The completion must reproduce the knowns exactly (within simplex eps)
	// and be a metric.
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if comp[i][j] != comp[j][i] {
				t.Fatalf("completion asymmetric at (%d,%d)", i, j)
			}
			if i == j && comp[i][j] != 0 {
				t.Fatalf("nonzero diagonal at %d", i)
			}
			for k := 0; k < 6; k++ {
				if comp[i][j] > comp[i][k]+comp[k][j]+1e-6 {
					t.Fatalf("completion violates triangle (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if lb, ub := d.Bounds(i, j); lb == ub { // known pair
				if math.Abs(comp[i][j]-lb) > 1e-6 {
					t.Fatalf("completion %v disagrees with known %v at (%d,%d)", comp[i][j], lb, i, j)
				}
			}
		}
	}
}
