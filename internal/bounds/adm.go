package bounds

import "metricprox/internal/pgraph"

// ADM is the Approximate Distance Map baseline of Shasha & Wang ("New
// techniques for best-match retrieval", TOIS 1990), the paper's exact
// state-of-the-art competitor. It maintains an all-pairs upper-bound matrix
// (shortest-path distances over the known edges, capped at maxDist) that is
// refreshed incrementally on every resolved edge in O(n²); lower-bound
// queries scan the known edges against the matrix.
//
// On distances normalised into [0, maxDist] the bounds are exactly as tight
// as SPLUB's (the library's tests assert this), but the per-update O(n²)
// work — O(n³)-style overall behaviour, as the paper notes — makes ADM
// unviable beyond small graphs.
type ADM struct {
	n       int
	maxDist float64
	ub      []float64 // n×n row-major shortest-path upper bounds
	edges   []pgraph.Edge
	known   map[int64]float64
}

// NewADM returns an ADM baseline over n objects.
func NewADM(n int, maxDist float64) *ADM {
	a := &ADM{
		n:       n,
		maxDist: maxDist,
		ub:      make([]float64, n*n),
		known:   make(map[int64]float64),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				a.ub[i*n+j] = maxDist
			}
		}
	}
	return a
}

// Name returns "adm".
func (a *ADM) Name() string { return "adm" }

// Update ingests a resolved edge and refreshes the upper-bound matrix: any
// shortest path improved by the new edge decomposes into
// old-shortest-path + new edge + old-shortest-path, so a single O(n²)
// sweep restores exactness.
func (a *ADM) Update(i, j int, d float64) {
	k := pgraph.Key(i, j)
	if _, ok := a.known[k]; ok {
		return
	}
	a.known[k] = d
	if i > j {
		i, j = j, i
	}
	a.edges = append(a.edges, pgraph.Edge{U: i, V: j, W: d})

	n := a.n
	if d < a.ub[i*n+j] {
		a.ub[i*n+j] = d
		a.ub[j*n+i] = d
	}
	for x := 0; x < n; x++ {
		xi := a.ub[x*n+i]
		xj := a.ub[x*n+j]
		row := a.ub[x*n : x*n+n]
		for y := 0; y < n; y++ {
			if v := xi + d + a.ub[j*n+y]; v < row[y] {
				row[y] = v
			}
			if v := xj + d + a.ub[i*n+y]; v < row[y] {
				row[y] = v
			}
		}
	}
	// Restore symmetry invariants possibly broken by the asymmetric sweep.
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			if a.ub[x*n+y] < a.ub[y*n+x] {
				a.ub[y*n+x] = a.ub[x*n+y]
			} else {
				a.ub[x*n+y] = a.ub[y*n+x]
			}
		}
	}
}

// Bounds returns the matrix upper bound and the known-edge-scan lower
// bound for (i, j).
func (a *ADM) Bounds(i, j int) (float64, float64) {
	if i == j {
		// Self-distances are identically 0; skip the edge scan.
		return 0, 0
	}
	if w, ok := a.known[pgraph.Key(i, j)]; ok {
		return w, w
	}
	n := a.n
	ub := a.ub[i*n+j]
	lb := 0.0
	for _, e := range a.edges {
		if v := e.W - a.ub[i*n+e.U] - a.ub[e.V*n+j]; v > lb {
			lb = v
		}
		if v := e.W - a.ub[i*n+e.V] - a.ub[e.U*n+j]; v > lb {
			lb = v
		}
	}
	return clamp(lb, ub, a.maxDist)
}
