package bounds

import (
	"math"

	"metricprox/internal/pgraph"
)

// SPLUB is the Shortest-Path based Lower and Upper Bound scheme of
// Section 4.1 (Algorithm 1). For an unknown edge (i, j) it runs Dijkstra
// from both endpoints over the known edges and then:
//
//	ub = min(maxDist, sp_i[j])
//	lb = max over known edges (k,l) of  w(k,l) − sp_i[k] − sp_j[l]
//	     (both orientations of the edge considered)
//
// Lemma 4.1 in the paper proves these are the *tightest* bounds derivable
// from the triangle inequality. Query cost is O(m + n log n); updates are
// O(1) because the only state is the shared partial graph.
type SPLUB struct {
	g       *pgraph.Graph
	maxDist float64
	si, sj  *pgraph.Searcher
	di, dj  []float64 // reusable distance arrays
}

// NewSPLUB returns a SPLUB bounder reading (and, via Update, feeding) the
// given partial graph. maxDist is the a-priori distance cap (1 in the
// paper's normalised setting).
func NewSPLUB(g *pgraph.Graph, maxDist float64) *SPLUB {
	return &SPLUB{
		g:       g,
		maxDist: maxDist,
		si:      pgraph.NewSearcher(g),
		sj:      pgraph.NewSearcher(g),
		di:      make([]float64, g.N()),
		dj:      make([]float64, g.N()),
	}
}

// Name returns "splub".
func (s *SPLUB) Name() string { return "splub" }

// Update records the resolved edge in the shared partial graph, unless the
// Session has already done so (the graph deduplicates).
func (s *SPLUB) Update(i, j int, d float64) { s.g.AddEdge(i, j, d) }

// Bounds implements Algorithm 1 (SPLUB).
func (s *SPLUB) Bounds(i, j int) (float64, float64) {
	if i == j {
		// A self-distance is identically 0; without this guard the two
		// Dijkstra runs would pay full query cost to report a loose
		// nonzero interval.
		return 0, 0
	}
	if w, ok := s.g.Weight(i, j); ok {
		return w, w
	}
	s.si.Run(i, s.di)
	s.sj.Run(j, s.dj)

	ub := s.maxDist
	if sp := s.di[j]; sp < ub {
		ub = sp
	}

	// Cap path lengths at maxDist: min(sp, maxDist) is a valid (and
	// tighter) upper bound on the corresponding distance, which makes the
	// lower bounds below tighter on sparse or disconnected graphs and
	// keeps SPLUB exactly equal to the ADM matrix bounds.
	for x := range s.di {
		if s.di[x] > s.maxDist {
			s.di[x] = s.maxDist
		}
		if s.dj[x] > s.maxDist {
			s.dj[x] = s.maxDist
		}
	}

	lb := 0.0
	for _, e := range s.g.Edges() {
		// Wrap the i→…→k, l→…→j shortest paths onto the known edge (k,l):
		// whatever length of w(k,l) they cannot cover must separate i and j.
		if v := e.W - s.di[e.U] - s.dj[e.V]; v > lb {
			lb = v
		}
		if v := e.W - s.di[e.V] - s.dj[e.U]; v > lb {
			lb = v
		}
	}
	return clamp(lb, ub, s.maxDist)
}

// TightestUB returns just the shortest-path upper bound, with an early-exit
// Dijkstra that stops as soon as j is settled. It exists for the ablation
// benchmark comparing early-exit against the full run used by Bounds.
func (s *SPLUB) TightestUB(i, j int) float64 {
	if i == j {
		return 0
	}
	if w, ok := s.g.Weight(i, j); ok {
		return w
	}
	sp := s.si.RunTo(i, j, s.di)
	return math.Min(sp, s.maxDist)
}
