// Package bounds implements the paper's bound-computation schemes — the
// machinery that lets a proximity algorithm resolve a distance-comparing IF
// statement without calling the distance oracle.
//
// All schemes answer the BOUNDS PROBLEM (Problem 1): given the partial
// graph of resolved distances, produce a lower and an upper bound for an
// unknown edge that no metric completion can violate. They differ in
// tightness and cost:
//
//   - SPLUB (Section 4.1): the *tightest* bounds, via two Dijkstra runs and
//     a scan of the known edges. O(m + n log n) per query, O(1) update.
//   - Tri Scheme (Section 4.2): bounds from triangles incident to the
//     queried pair only. Expected O(m/n) per query, O(log n) update.
//   - ADM (Shasha–Wang baseline): tightest bounds from all-pairs bound
//     matrices; O(n²) incremental update.
//   - LAESA / TLAESA (landmark baselines): static pivot-table bounds.
//   - DFT (Section 2.2): not a bound scheme but a *comparator* — it decides
//     a comparison outright by LP feasibility; see Comparator.
//   - Noop: the trivial (0, maxDist) bounds, which recovers the unmodified
//     proximity algorithm.
//
// Consumers normally reach these through internal/core's Session, which
// wires a scheme to the oracle and exposes the re-authored IF surface
// (DistIfLess and friends); the types here are the pluggable backends.
package bounds
