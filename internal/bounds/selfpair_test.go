package bounds

import (
	"math/rand"
	"testing"

	"metricprox/internal/datasets"
	"metricprox/internal/pgraph"
)

// TestSelfPairBoundsAllSchemes is the satellite regression table: every
// scheme must answer Bounds(i, i) = (0, 0) exactly — a self-distance is
// identically 0 in any metric — instead of leaking a loose interval (the
// pre-fix behaviour: tri returned (0, maxDist) for an isolated node,
// laesa a 2·d(l,i) upper bound, dft had no LP variable for (i,i), and
// hybrid burnt an escalation on a question with a fixed answer).
func TestSelfPairBoundsAllSchemes(t *testing.T) {
	g := figure1()
	landmarks := []int{1, 2}

	adm := NewADM(7, 1)
	laesa := NewLAESA(7, landmarks, 1)
	tlaesa := NewTLAESA(7, landmarks, 1)
	dft := NewDFT(7, 1)
	for _, e := range g.Edges() {
		adm.Update(e.U, e.V, e.W)
		laesa.Update(e.U, e.V, e.W)
		tlaesa.Update(e.U, e.V, e.W)
		dft.Update(e.U, e.V, e.W)
	}
	tri := NewTri(g, 1)
	splub := NewSPLUB(g, 1)
	hybrid := NewHybrid(NewTri(g, 1), NewSPLUB(g, 1), 0) // gap 0: escalates every non-self query

	table := []struct {
		name string
		b    Bounder
	}{
		{"tri", tri},
		{"splub", splub},
		{"adm", adm},
		{"laesa", laesa},
		{"tlaesa", tlaesa},
		{"dft", dft},
		{"hybrid", hybrid},
	}
	for _, tc := range table {
		for i := 0; i < 7; i++ {
			lb, ub := tc.b.Bounds(i, i)
			if lb != 0 || ub != 0 {
				t.Errorf("%s: Bounds(%d,%d) = [%v,%v], want [0,0]", tc.name, i, i, lb, ub)
			}
		}
	}

	// The hybrid guard must short-circuit *before* the query counter: a
	// self-pair is not a query the cheap/tight trade-off ever sees.
	if q, esc := hybrid.Escalations(); q != 0 || esc != 0 {
		t.Errorf("hybrid counted %d queries/%d escalations for self-pairs, want 0/0", q, esc)
	}
	// SPLUB's early-exit upper-bound path needs the same guard.
	if ub := splub.TightestUB(3, 3); ub != 0 {
		t.Errorf("splub.TightestUB(3,3) = %v, want 0", ub)
	}
}

// TestTriBoundsBatchMatchesScalar pins the BatchBounder contract:
// BoundsBatch must write bit-identical intervals to per-pair Bounds calls,
// on a query mix that includes self-pairs, resolved pairs, duplicate
// pairs, and pairs with empty or disjoint adjacency rows.
func TestTriBoundsBatchMatchesScalar(t *testing.T) {
	const n = 64
	m := datasets.SFPOI(n, 1)
	g := pgraph.New(n)
	rng := rand.New(rand.NewSource(7))
	for g.M() < 400 {
		i, j := rng.Intn(n-1), rng.Intn(n-1) // node n-1 stays isolated
		if i != j && !g.Known(i, j) {
			g.AddEdge(i, j, m.Distance(i, j))
		}
	}
	tri := NewTriRelaxed(g, 1, 1.5) // exercise the ρ-relaxed arithmetic too

	var is, js []int
	for q := 0; q < 500; q++ {
		is = append(is, rng.Intn(n))
		js = append(js, rng.Intn(n))
	}
	for q := 0; q < 20; q++ { // self-pairs
		x := rng.Intn(n)
		is, js = append(is, x), append(js, x)
	}
	for _, e := range g.Edges()[:20] { // resolved pairs
		is, js = append(is, e.U), append(js, e.V)
	}
	is, js = append(is, is[0]), append(js, js[0]) // duplicate query
	is, js = append(is, n-1), append(js, 0)       // isolated anchor row

	lb := make([]float64, len(is))
	ub := make([]float64, len(is))
	for trial := 0; trial < 2; trial++ { // second pass reuses warm scratch
		tri.BoundsBatch(is, js, lb, ub)
		for q := range is {
			wl, wu := tri.Bounds(is[q], js[q])
			if lb[q] != wl || ub[q] != wu {
				t.Fatalf("trial %d: batch[%d] (%d,%d) = [%v,%v], scalar [%v,%v]",
					trial, q, is[q], js[q], lb[q], ub[q], wl, wu)
			}
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("BoundsBatch with mismatched slice lengths did not panic")
		}
	}()
	tri.BoundsBatch(is, js[:1], lb, ub)
}

// TestTriBatchInterleavedWithUpdates checks that batch answers stay
// correct across graph growth — row relocations and compactions between
// batches must not leave the bounder reading stale views.
func TestTriBatchInterleavedWithUpdates(t *testing.T) {
	const n = 48
	m := datasets.SFPOI(n, 2)
	g := pgraph.New(n)
	tri := NewTri(g, 1)
	rng := rand.New(rand.NewSource(9))

	is := make([]int, 128)
	js := make([]int, 128)
	lb := make([]float64, 128)
	ub := make([]float64, 128)
	for round := 0; round < 12; round++ {
		for k := 0; k < 60; k++ { // grow: forces relocations/compaction
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j && !g.Known(i, j) {
				tri.Update(i, j, m.Distance(i, j))
			}
		}
		for q := range is {
			is[q], js[q] = rng.Intn(n), rng.Intn(n)
		}
		tri.BoundsBatch(is, js, lb, ub)
		for q := range is {
			wl, wu := tri.Bounds(is[q], js[q])
			if lb[q] != wl || ub[q] != wu {
				t.Fatalf("round %d: batch[%d] = [%v,%v], scalar [%v,%v]",
					round, q, lb[q], ub[q], wl, wu)
			}
			if d := m.Distance(is[q], js[q]); lb[q]-1e-9 > d || d > ub[q]+1e-9 {
				t.Fatalf("round %d: unsound batch interval [%v,%v] for true %v",
					round, lb[q], ub[q], d)
			}
		}
	}
	if st := g.Stats(); st.Epoch == 0 {
		t.Fatalf("workload never relocated a row (epoch 0, stats %+v); grow it", st)
	}
}
