package bounds

import (
	"metricprox/internal/lp"
	"metricprox/internal/pgraph"
)

// DFT is the DIRECT FEASIBILITY TEST of Section 2.2: the complete
// triangle-inequality structure over all C(n,2) pairwise distances is
// encoded once as a system of linear inequalities; every resolved distance
// adds an equality; and a comparison IF statement is decided by probing the
// system with the *reversed* constraint — if no metric completion satisfies
// the reversal, the original comparison is certain and the oracle calls are
// saved.
//
// DFT subsumes every bound-based scheme (it reasons over the joint
// polytope, not per-edge intervals), which is why the paper reports it
// saving the most distance calls — and why it only scales to graphs with a
// few hundred edges: each IF statement solves a phase-1 simplex over
// C(n,2) variables and 3·C(n,3) triangle rows.
type DFT struct {
	n       int
	maxDist float64
	prob    *lp.Problem
	base    int // row count of the immutable triangle/box system plus equalities
	known   map[int64]float64
	probes  int // LP solves performed, for CPU-cost reporting
}

// NewDFT builds the full triangle-inequality system for n objects with all
// distances in [0, maxDist]. Cost: C(n,2) variables, C(n,2) + 3·C(n,3)
// rows — only viable for small n, by design.
func NewDFT(n int, maxDist float64) *DFT {
	d := &DFT{
		n:       n,
		maxDist: maxDist,
		prob:    lp.NewProblem(n * (n - 1) / 2),
		known:   make(map[int64]float64),
	}
	// Box: each distance at most maxDist (nonnegativity is implicit).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d.prob.AddLE(map[int]float64{d.varOf(i, j): 1}, maxDist)
		}
	}
	// Triangles: each side at most the sum of the other two.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				ij, jk, ik := d.varOf(i, j), d.varOf(j, k), d.varOf(i, k)
				d.prob.AddLE(map[int]float64{ij: 1, jk: -1, ik: -1}, 0)
				d.prob.AddLE(map[int]float64{ij: -1, jk: 1, ik: -1}, 0)
				d.prob.AddLE(map[int]float64{ij: -1, jk: -1, ik: 1}, 0)
			}
		}
	}
	d.base = d.prob.Snapshot()
	return d
}

// varOf maps an unordered pair to its LP variable index.
func (d *DFT) varOf(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Row-major index into the strict upper triangle.
	return i*(2*d.n-i-1)/2 + (j - i - 1)
}

// Name returns "dft".
func (d *DFT) Name() string { return "dft" }

// Probes returns the number of LP feasibility solves performed so far.
func (d *DFT) Probes() int { return d.probes }

// Update pins the resolved distance with an equality pair.
func (d *DFT) Update(i, j int, dist float64) {
	k := pgraph.Key(i, j)
	if _, ok := d.known[k]; ok {
		return
	}
	d.known[k] = dist
	d.prob.AddEQ(map[int]float64{d.varOf(i, j): 1}, dist)
	d.base = d.prob.Snapshot()
}

// probe adds the reversed constraint, solves, rolls back, and reports
// whether the reversal was infeasible (i.e. the original claim is proven).
func (d *DFT) probe(coeffs map[int]float64, rhs float64, ge bool) bool {
	snap := d.prob.Snapshot()
	if ge {
		d.prob.AddGE(coeffs, rhs)
	} else {
		d.prob.AddLE(coeffs, rhs)
	}
	d.probes++
	feasible := d.prob.Feasible()
	d.prob.Rollback(snap)
	return !feasible
}

// ProveLess reports whether dist(i,j) < dist(k,l) holds in every metric
// completion, by refuting dist(i,j) ≥ dist(k,l).
func (d *DFT) ProveLess(i, j, k, l int) bool {
	vij, vkl := d.varOf(i, j), d.varOf(k, l)
	if vij == vkl {
		return false
	}
	return d.probe(map[int]float64{vij: 1, vkl: -1}, 0, true)
}

// ProveLessC reports whether dist(i,j) < c is certain, refuting
// dist(i,j) ≥ c.
func (d *DFT) ProveLessC(i, j int, c float64) bool {
	return d.probe(map[int]float64{d.varOf(i, j): 1}, c, true)
}

// ProveGEC reports whether dist(i,j) ≥ c is certain, refuting
// dist(i,j) ≤ c. (Refuting the weak inequality proves the strict one,
// which implies ≥.)
func (d *DFT) ProveGEC(i, j int, c float64) bool {
	return d.probe(map[int]float64{d.varOf(i, j): 1}, c, false)
}

// Bounder facade: DFT can also act as a Bounder by exposing only what it
// knows exactly; proximity algorithms driving DFT use the Comparator
// interface for the actual pruning.

// Bounds returns exact values for resolved pairs and the trivial interval
// otherwise. (Interval bounds via LP bisection would be possible but the
// comparator interface is strictly more powerful and cheaper.)
func (d *DFT) Bounds(i, j int) (float64, float64) {
	if i == j {
		// A self-distance is identically 0 and has no LP variable
		// (varOf is only defined for i ≠ j).
		return 0, 0
	}
	if w, ok := d.known[pgraph.Key(i, j)]; ok {
		return w, w
	}
	return 0, d.maxDist
}

// Completion extracts one concrete metric consistent with everything the
// DFT knows: a full n×n symmetric matrix that reproduces every resolved
// distance exactly and satisfies all triangle inequalities. It is a vertex
// of the metric polytope (a witness from the phase-1 simplex) — useful for
// debugging, for what-if analyses, and as a constructive proof that the
// recorded distances are jointly consistent. ok is false only if the
// recorded distances are themselves contradictory.
func (d *DFT) Completion() ([][]float64, bool) {
	x, ok := d.prob.FeasiblePoint()
	if !ok {
		return nil, false
	}
	m := make([][]float64, d.n)
	for i := range m {
		m[i] = make([]float64, d.n)
	}
	for i := 0; i < d.n; i++ {
		for j := i + 1; j < d.n; j++ {
			v := x[d.varOf(i, j)]
			m[i][j] = v
			m[j][i] = v
		}
	}
	return m, true
}
