package prox

import (
	"sort"

	"metricprox/internal/core"
	"metricprox/internal/fcmp"
	"metricprox/internal/unionfind"
)

// Merge is one agglomeration step of a dendrogram: clusters A and B (ids
// 0..n-1 are the leaf objects; n+i is the cluster created by Merges[i])
// joined at the given distance.
type Merge struct {
	A, B int
	Dist float64
}

// Dendrogram is the full single-linkage merge tree over n objects.
// Merges are ordered by nondecreasing distance.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// SingleLinkage computes the single-linkage hierarchical clustering — the
// dendrogram construction behind the fMRI cluster-analysis application the
// paper cites — via the classic MST equivalence: sorting the minimum
// spanning tree's edges by weight yields exactly the single-linkage merge
// order. All distance savings therefore come from the session-driven MST.
func SingleLinkage(s core.View) Dendrogram {
	n := s.N()
	mst := KruskalMST(s)
	es := append(mst.Edges[:0:0], mst.Edges...)
	sort.Slice(es, func(a, b int) bool {
		if !fcmp.ExactEq(es[a].W, es[b].W) {
			return es[a].W < es[b].W
		}
		if es[a].U != es[b].U {
			return es[a].U < es[b].U
		}
		return es[a].V < es[b].V
	})

	d := Dendrogram{N: n}
	dsu := unionfind.New(n)
	clusterOf := make([]int, n) // DSU root -> current cluster id
	for i := range clusterOf {
		clusterOf[i] = i
	}
	next := n
	for _, e := range es {
		ca := clusterOf[dsu.Find(e.U)]
		cb := clusterOf[dsu.Find(e.V)]
		dsu.Union(e.U, e.V)
		clusterOf[dsu.Find(e.U)] = next
		d.Merges = append(d.Merges, Merge{A: ca, B: cb, Dist: e.W})
		next++
	}
	return d
}

// leaf returns one leaf object under the given cluster id.
func (d Dendrogram) leaf(id int) int {
	for id >= d.N {
		id = d.Merges[id-d.N].A
	}
	return id
}

// CutAt returns a flat clustering: every merge with distance ≤ h is
// applied, and the result maps each object to a dense cluster label
// (labels are assigned in object order).
func (d Dendrogram) CutAt(h float64) []int {
	dsu := unionfind.New(d.N)
	for _, m := range d.Merges {
		if m.Dist > h {
			break // merges are sorted by distance
		}
		dsu.Union(d.leaf(m.A), d.leaf(m.B))
	}
	labels := make([]int, d.N)
	next := 0
	seen := map[int]int{}
	for x := 0; x < d.N; x++ {
		r := dsu.Find(x)
		id, ok := seen[r]
		if !ok {
			id = next
			next++
			seen[r] = id
		}
		labels[x] = id
	}
	return labels
}

// Clusters returns the number of clusters after cutting at h.
func (d Dendrogram) Clusters(h float64) int {
	labels := d.CutAt(h)
	max := -1
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	return max + 1
}
