package prox

import "metricprox/internal/core"

// Tour is a travelling-salesman tour: a permutation of all objects and its
// total length.
type Tour struct {
	Order  []int
	Length float64
}

// TSPApprox returns the classic MST-based 2-approximation: build the
// minimum spanning tree (through the session — this is where the call
// savings happen), then short-cut a preorder walk. Only the n tour edges
// are additionally resolved for the length.
func TSPApprox(s *core.Session) Tour {
	mst := PrimMST(s)
	n := s.N()
	adj := make([][]int, n)
	for _, e := range mst.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	order := make([]int, 0, n)
	seen := make([]bool, n)
	stack := []int{0}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		order = append(order, u)
		// Push in reverse for stable preorder.
		for i := len(adj[u]) - 1; i >= 0; i-- {
			if !seen[adj[u][i]] {
				stack = append(stack, adj[u][i])
			}
		}
	}
	return tourFrom(s, order)
}

// TSPNearestNeighbour returns the greedy nearest-neighbour tour. The inner
// IF — `is dist(cur, x) smaller than the best candidate so far?` — runs
// through DistIfLess, so candidates whose lower bound exceeds the current
// best are skipped without a call.
func TSPNearestNeighbour(s *core.Session) Tour {
	n := s.N()
	visited := make([]bool, n)
	order := make([]int, 1, n)
	visited[0] = true
	cur := 0
	for len(order) < n {
		best, bestD := -1, s.MaxDistance()*2
		for x := 0; x < n; x++ {
			if visited[x] {
				continue
			}
			if d, less := s.DistIfLess(cur, x, bestD); less {
				best, bestD = x, d
			}
		}
		visited[best] = true
		order = append(order, best)
		cur = best
	}
	return tourFrom(s, order)
}

// TwoOpt improves a tour by 2-opt moves until no improving move remains
// (or maxRounds passes complete). The move test compares *sums* of
// distances — the "distance aggregates" of the paper's Contribution 1:
//
//	improve iff dist(a,b) + dist(c,d) > dist(a,c) + dist(b,d)
//
// The current tour edges (a,b) and (c,d) are already resolved, so the
// re-authored test first checks lb(a,c) + lb(b,d) ≥ dist(a,b) + dist(c,d):
// when the bound sum already rules out improvement, both candidate edges
// stay unresolved. Output equals the unpruned 2-opt exactly.
func TwoOpt(s *core.Session, t Tour, maxRounds int) Tour {
	n := len(t.Order)
	order := append([]int(nil), t.Order...)
	for round := 0; round < maxRounds; round++ {
		improved := false
		for i := 0; i < n-1; i++ {
			a, b := order[i], order[i+1]
			for j := i + 2; j < n; j++ {
				if i == 0 && j == n-1 {
					continue // would re-create the same tour
				}
				c := order[j]
				d := order[(j+1)%n]
				// Improve iff dist(a,c)+dist(b,d) < dist(a,b)+dist(c,d).
				// Session.SumLess composes the bound intervals and only
				// resolves the terms the verdict genuinely needs.
				if !s.SumLess(
					[]core.Pair{{A: a, B: c}, {A: b, B: d}},
					[]core.Pair{{A: a, B: b}, {A: c, B: d}},
				) {
					continue
				}
				// Reverse the segment order[i+1..j].
				for l, r := i+1, j; l < r; l, r = l+1, r-1 {
					order[l], order[r] = order[r], order[l]
				}
				b = order[i+1]
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return tourFrom(s, order)
}

// tourFrom resolves the tour edges and sums the length.
func tourFrom(s *core.Session, order []int) Tour {
	length := 0.0
	for i := range order {
		length += s.Dist(order[i], order[(i+1)%len(order)])
	}
	return Tour{Order: order, Length: length}
}
