package prox

import (
	"math"
	"math/rand"

	"metricprox/internal/core"
)

// Clustering is the result of a medoid clustering: l medoid objects, a
// per-point assignment (index into Medoids), and the total cost — the sum
// of each point's distance to its medoid.
type Clustering struct {
	Medoids []int
	Assign  []int
	Cost    float64
}

// assignment holds the nearest/second-nearest medoid structure that both
// PAM and CLARANS maintain.
type assignment struct {
	near []int     // index into medoids of the nearest medoid
	d1   []float64 // distance to nearest
	d2   []float64 // distance to second nearest
}

// assignAll computes the nearest and second-nearest medoid of every point.
// The inner IF — `is dist(p, m) among the two smallest so far?` — is
// re-authored as DistIfLess against the current second-best, so medoids
// whose lower bound already exceeds it are skipped without oracle calls.
func assignAll(s core.View, medoids []int) assignment {
	n := s.N()
	if pf, ok := s.(core.BoundsPrefetcher); ok {
		// One batch for the whole point×medoid grid a remote view is about
		// to scan, instead of a round-trip per DistIfLess prune check.
		pairs := make([]core.Pair, 0, n*len(medoids))
		for p := 0; p < n; p++ {
			for _, m := range medoids {
				if p != m {
					pairs = append(pairs, core.Pair{A: p, B: m})
				}
			}
		}
		pf.PrefetchBounds(pairs)
	}
	a := assignment{
		near: make([]int, n),
		d1:   make([]float64, n),
		d2:   make([]float64, n),
	}
	for p := 0; p < n; p++ {
		a.near[p], a.d1[p], a.d2[p] = assignPoint(s, medoids, p)
	}
	return a
}

// assignPoint scans one point's medoids for its nearest and second-nearest.
// Points are independent, so assignAllParallel fans this exact loop out
// over workers with identical results.
func assignPoint(s core.View, medoids []int, p int) (near int, d1, d2 float64) {
	inf := math.Inf(1)
	best, bd1, bd2 := -1, inf, inf
	for mi, m := range medoids {
		var d float64
		if p == m {
			d = 0
		} else {
			var less bool
			d, less = s.DistIfLess(p, m, bd2)
			if !less {
				continue // cannot enter the top two
			}
		}
		if d < bd1 {
			best, bd2, bd1 = mi, bd1, d
		} else {
			bd2 = d
		}
	}
	return best, bd1, bd2
}

// swapDelta returns the exact cost change of replacing medoids[mi] with
// the non-medoid h, resolving d(p, h) only for points where the bounds
// leave the term in doubt (the classic PAM T-contribution, pruned):
//
//	p loses its medoid:  term = min(d(p,h), d2[p]) − d1[p]
//	                     → d2[p] − d1[p] without a call if lb(p,h) ≥ d2[p]
//	p keeps its medoid:  term = min(d(p,h), d1[p]) − d1[p]
//	                     → 0 without a call if lb(p,h) ≥ d1[p]
func swapDelta(s core.View, medoids []int, mi, h int, a assignment) float64 {
	delta := 0.0
	n := s.N()
	if pf, ok := s.(core.BoundsPrefetcher); ok {
		pairs := make([]core.Pair, 0, n-1)
		for p := 0; p < n; p++ {
			if p != h {
				pairs = append(pairs, core.Pair{A: p, B: h})
			}
		}
		pf.PrefetchBounds(pairs)
	}
	for p := 0; p < n; p++ {
		if p == h {
			delta -= a.d1[p] // h becomes its own medoid
			continue
		}
		if a.near[p] == mi {
			d, less := s.DistIfLess(p, h, a.d2[p])
			if less {
				delta += d - a.d1[p]
			} else {
				delta += a.d2[p] - a.d1[p]
			}
		} else {
			if d, less := s.DistIfLess(p, h, a.d1[p]); less {
				delta += d - a.d1[p]
			}
		}
	}
	return delta
}

// totalCost sums d1 over all points.
func (a assignment) totalCost() float64 {
	c := 0.0
	for _, d := range a.d1 {
		c += d
	}
	return c
}

// PAM runs the Partitioning-Around-Medoids swap phase (Kaufman &
// Rousseeuw) from a seeded random initialisation: in every round the best
// of all l·(n−l) single swaps is applied until none improves the cost.
// Every distance access is mediated by the Session, so the medoid set and
// final assignment are identical for every bound scheme.
func PAM(s core.View, l int, seed int64) Clustering {
	n := s.N()
	if l > n {
		l = n
	}
	rng := rand.New(rand.NewSource(seed))
	medoids := append([]int(nil), rng.Perm(n)[:l]...)
	isMedoid := make([]bool, n)
	for _, m := range medoids {
		isMedoid[m] = true
	}

	const improveEps = 1e-12
	for {
		a := assignAll(s, medoids)
		bestDelta, bestMi, bestH := -improveEps, -1, -1
		for mi := range medoids {
			for h := 0; h < n; h++ {
				if isMedoid[h] {
					continue
				}
				if delta := swapDelta(s, medoids, mi, h, a); delta < bestDelta {
					bestDelta, bestMi, bestH = delta, mi, h
				}
			}
		}
		if bestMi == -1 {
			return Clustering{Medoids: medoids, Assign: a.near, Cost: a.totalCost()}
		}
		isMedoid[medoids[bestMi]] = false
		isMedoid[bestH] = true
		medoids[bestMi] = bestH
	}
}
