package prox_test

import (
	"fmt"

	"metricprox/internal/core"
	"metricprox/internal/metric"
	"metricprox/internal/prox"
)

// lineOracle returns an oracle over five points on a line at positions
// 0.0, 0.1, 0.2, 0.6, 0.7 (scaled L1, so distances are position gaps).
func lineOracle() *metric.Oracle {
	pts := [][]float64{{0.0}, {0.1}, {0.2}, {0.6}, {0.7}}
	return metric.NewOracle(metric.NewVectors(pts, 1, 1))
}

// ExamplePrimMST builds a minimum spanning tree through the Tri Scheme.
func ExamplePrimMST() {
	s := core.NewSession(lineOracle(), core.SchemeTri)
	mst := prox.PrimMST(s)
	fmt.Printf("weight %.1f over %d edges\n", mst.Weight, len(mst.Edges))
	// Output:
	// weight 0.7 over 4 edges
}

// ExampleKNNGraph builds the 2-nearest-neighbour graph.
func ExampleKNNGraph() {
	s := core.NewSession(lineOracle(), core.SchemeTri)
	g := prox.KNNGraph(s, 2)
	fmt.Printf("neighbours of point 0: #%d and #%d\n", g[0][0].ID, g[0][1].ID)
	fmt.Printf("neighbours of point 3: #%d and #%d\n", g[3][0].ID, g[3][1].ID)
	// Output:
	// neighbours of point 0: #1 and #2
	// neighbours of point 3: #4 and #2
}

// ExampleSingleLinkage cuts a dendrogram into the two obvious clusters.
func ExampleSingleLinkage() {
	s := core.NewSession(lineOracle(), core.SchemeTri)
	d := prox.SingleLinkage(s)
	labels := d.CutAt(0.2) // gaps of 0.1 merge; the 0.4 gap does not
	fmt.Println("labels:", labels)
	fmt.Println("clusters:", d.Clusters(0.2))
	// Output:
	// labels: [0 0 0 1 1]
	// clusters: 2
}
