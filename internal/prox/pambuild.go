package prox

import (
	"math"

	"metricprox/internal/core"
)

// PAMBuild runs the full Kaufman–Rousseeuw PAM: the classic BUILD
// initialisation followed by the same swap phase PAM uses. BUILD is
// deterministic (no seed) and usually starts the swap phase much closer to
// a local optimum, at the price of additional distance work — which is
// exactly where the framework helps:
//
//   - the first medoid minimises a *sum* of distances over all objects;
//     candidates are compared with Session.SumLess, so whole candidate
//     sums are rejected from bounds without resolving every term;
//   - each subsequent medoid maximises the total assignment gain
//     Σ max(D_i − d(i,c), 0); a candidate's term for object i is provably
//     zero when lb(i,c) ≥ D_i, skipping the call.
//
// As everywhere in the library, the output is identical under every bound
// scheme.
func PAMBuild(s *core.Session, l int) Clustering {
	n := s.N()
	if l > n {
		l = n
	}
	medoids := buildInit(s, l)
	isMedoid := make([]bool, n)
	for _, m := range medoids {
		isMedoid[m] = true
	}

	const improveEps = 1e-12
	for {
		a := assignAll(s, medoids)
		bestDelta, bestMi, bestH := -improveEps, -1, -1
		for mi := range medoids {
			for h := 0; h < n; h++ {
				if isMedoid[h] {
					continue
				}
				if delta := swapDelta(s, medoids, mi, h, a); delta < bestDelta {
					bestDelta, bestMi, bestH = delta, mi, h
				}
			}
		}
		if bestMi == -1 {
			return Clustering{Medoids: medoids, Assign: a.near, Cost: a.totalCost()}
		}
		isMedoid[medoids[bestMi]] = false
		isMedoid[bestH] = true
		medoids[bestMi] = bestH
	}
}

// buildInit selects l medoids with the BUILD heuristic.
func buildInit(s *core.Session, l int) []int {
	n := s.N()
	// First medoid: the object minimising the sum of distances to all
	// others — a tournament of aggregate comparisons.
	pairsOf := func(c int) []core.Pair {
		ps := make([]core.Pair, 0, n-1)
		for x := 0; x < n; x++ {
			if x != c {
				ps = append(ps, core.Pair{A: c, B: x})
			}
		}
		return ps
	}
	best := 0
	for c := 1; c < n; c++ {
		if s.SumLess(pairsOf(c), pairsOf(best)) {
			best = c
		}
	}
	medoids := []int{best}

	// D[i] = distance to the nearest chosen medoid. Exact values are
	// needed for the gain computation; the first medoid's row may already
	// be partially resolved by the tournament.
	D := make([]float64, n)
	for i := 0; i < n; i++ {
		D[i] = s.Dist(i, best)
	}

	for len(medoids) < l {
		inSet := make(map[int]bool, len(medoids))
		for _, m := range medoids {
			inSet[m] = true
		}
		bestC, bestGain := -1, math.Inf(-1)
		for c := 0; c < n; c++ {
			if inSet[c] {
				continue
			}
			gain := 0.0
			for i := 0; i < n; i++ {
				if i == c || inSet[i] {
					continue
				}
				// Term max(D_i − d(i,c), 0): zero unless d(i,c) < D_i.
				if d, less := s.DistIfLess(i, c, D[i]); less {
					gain += D[i] - d
				}
			}
			if gain > bestGain {
				bestGain, bestC = gain, c
			}
		}
		medoids = append(medoids, bestC)
		for i := 0; i < n; i++ {
			if d, less := s.DistIfLess(i, bestC, D[i]); less {
				D[i] = d
			}
		}
	}
	return medoids
}
