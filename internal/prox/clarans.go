package prox

import (
	"math"
	"math/rand"

	"metricprox/internal/core"
)

// CLARANSConfig parameterises the randomised search. Zero values take the
// defaults of Ng & Han (2002): NumLocal 2, MaxNeighbor
// max(250, ⌈0.0125·l·(n−l)⌉).
type CLARANSConfig struct {
	NumLocal    int
	MaxNeighbor int
	Seed        int64
}

func (c CLARANSConfig) withDefaults(n, l int) CLARANSConfig {
	if c.NumLocal == 0 {
		c.NumLocal = 2
	}
	if c.MaxNeighbor == 0 {
		c.MaxNeighbor = int(math.Ceil(0.0125 * float64(l) * float64(n-l)))
		if c.MaxNeighbor < 250 {
			c.MaxNeighbor = 250
		}
	}
	return c
}

// CLARANS runs the randomised medoid search of Ng & Han: from NumLocal
// random starts it repeatedly probes a random (medoid, non-medoid) swap,
// accepting any improvement and declaring a local optimum after
// MaxNeighbor consecutive failures. The swap-cost evaluation is the same
// bound-pruned computation PAM uses, so the trajectory — including every
// random draw — is identical across bound schemes and the result matches
// the unmodified algorithm exactly.
func CLARANS(s core.View, l int, cfg CLARANSConfig) Clustering {
	n := s.N()
	if l > n {
		l = n
	}
	cfg = cfg.withDefaults(n, l)
	rng := rand.New(rand.NewSource(cfg.Seed))

	best := Clustering{Cost: math.Inf(1)}
	for local := 0; local < cfg.NumLocal; local++ {
		medoids := append([]int(nil), rng.Perm(n)[:l]...)
		isMedoid := make([]bool, n)
		for _, m := range medoids {
			isMedoid[m] = true
		}
		a := assignAll(s, medoids)
		cost := a.totalCost()

		for fails := 0; fails < cfg.MaxNeighbor; {
			mi := rng.Intn(l)
			h := rng.Intn(n)
			if isMedoid[h] {
				continue // redraw; depends only on the medoid set
			}
			delta := swapDelta(s, medoids, mi, h, a)
			if delta < -1e-12 {
				isMedoid[medoids[mi]] = false
				isMedoid[h] = true
				medoids[mi] = h
				a = assignAll(s, medoids)
				cost = a.totalCost()
				fails = 0
			} else {
				fails++
			}
		}
		if cost < best.Cost {
			best = Clustering{
				Medoids: append([]int(nil), medoids...),
				Assign:  append([]int(nil), a.near...),
				Cost:    cost,
			}
		}
	}
	return best
}
