package prox

import (
	"testing"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

func TestKNNGraphParallelMatchesSequential(t *testing.T) {
	m := datasets.RandomMetric(60, 51)
	want := refKNN(m, 4)

	o := metric.NewOracle(m)
	s := core.Share(core.NewSession(o, core.SchemeTri))
	got := KNNGraphParallel(s, 4, 4)
	if !knnEqual(got, want) {
		t.Fatal("parallel kNN graph diverged from brute force")
	}
}

func TestKNNGraphParallelSavesCalls(t *testing.T) {
	m := datasets.SFPOI(80, 52)
	oN := metric.NewOracle(m)
	noop := core.Share(core.NewSession(oN, core.SchemeNoop))
	KNNGraphParallel(noop, 5, 4)

	oT := metric.NewOracle(m)
	tri := core.Share(core.NewSession(oT, core.SchemeTri))
	KNNGraphParallel(tri, 5, 4)

	if oT.Calls() >= oN.Calls() {
		t.Fatalf("parallel Tri kNN made %d calls, Noop %d", oT.Calls(), oN.Calls())
	}
}

func TestKNNGraphParallelSingleWorker(t *testing.T) {
	// One worker must match the sequential builder exactly, calls included.
	m := datasets.RandomMetric(40, 53)
	oSeq := metric.NewOracle(m)
	seq := core.NewSession(oSeq, core.SchemeTri)
	wantG := KNNGraph(seq, 3)

	oPar := metric.NewOracle(m)
	par := core.Share(core.NewSession(oPar, core.SchemeTri))
	gotG := KNNGraphParallel(par, 3, 1)

	if !knnEqual(gotG, wantG) {
		t.Fatal("single-worker parallel build diverged from sequential")
	}
	if oPar.Calls() != oSeq.Calls() {
		t.Fatalf("single worker made %d calls, sequential %d", oPar.Calls(), oSeq.Calls())
	}
}

func TestSharedSessionStats(t *testing.T) {
	m := datasets.RandomMetric(20, 54)
	o := metric.NewOracle(m)
	s := core.Share(core.NewSession(o, core.SchemeTri))
	s.Bootstrap(core.PickLandmarks(20, 4, 1))
	s.Dist(0, 1)
	s.Less(0, 2, 3, 4)
	s.LessThan(5, 6, 0.5)
	st := s.Stats()
	if st.OracleCalls != o.Calls() {
		t.Fatalf("stats count %d, oracle %d", st.OracleCalls, o.Calls())
	}
	if st.BootstrapCalls == 0 {
		t.Fatal("bootstrap not recorded through shared view")
	}
}
