package prox

import (
	"math"
	"testing"
	"time"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

// gridTieSpace returns a matrix metric with massive distance ties: points
// of a side×side integer grid under Manhattan distance. Nearly every node
// has several candidates at exactly its k-th-nearest distance, which is
// the regime where naive threshold handling makes the neighbour set
// depend on scan order.
func gridTieSpace(t *testing.T, side int) *metric.Matrix {
	t.Helper()
	n := side * side
	d := make([][]float64, n)
	scale := 1.0 / float64(2*(side-1))
	for i := 0; i < n; i++ {
		d[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			dx := math.Abs(float64(i%side - j%side))
			dy := math.Abs(float64(i/side - j/side))
			d[i][j] = (dx + dy) * scale
		}
	}
	m, err := metric.NewMatrix(d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestKNNGraphParallelMatchesSequential(t *testing.T) {
	m := datasets.RandomMetric(60, 51)
	want := refKNN(m, 4)

	o := metric.NewOracle(m)
	s := core.Share(core.NewSession(o, core.SchemeTri))
	got := KNNGraphParallel(s, 4, 4)
	if !knnEqual(got, want) {
		t.Fatal("parallel kNN graph diverged from brute force")
	}
}

func TestKNNGraphParallelSavesCalls(t *testing.T) {
	m := datasets.SFPOI(80, 52)
	oN := metric.NewOracle(m)
	noop := core.Share(core.NewSession(oN, core.SchemeNoop))
	KNNGraphParallel(noop, 5, 4)

	oT := metric.NewOracle(m)
	tri := core.Share(core.NewSession(oT, core.SchemeTri))
	KNNGraphParallel(tri, 5, 4)

	if oT.Calls() >= oN.Calls() {
		t.Fatalf("parallel Tri kNN made %d calls, Noop %d", oT.Calls(), oN.Calls())
	}
}

func TestKNNGraphParallelSingleWorker(t *testing.T) {
	// One worker must match the sequential builder exactly, calls included.
	m := datasets.RandomMetric(40, 53)
	oSeq := metric.NewOracle(m)
	seq := core.NewSession(oSeq, core.SchemeTri)
	wantG := KNNGraph(seq, 3)

	oPar := metric.NewOracle(m)
	par := core.Share(core.NewSession(oPar, core.SchemeTri))
	gotG := KNNGraphParallel(par, 3, 1)

	if !knnEqual(gotG, wantG) {
		t.Fatal("single-worker parallel build diverged from sequential")
	}
	if oPar.Calls() != oSeq.Calls() {
		t.Fatalf("single worker made %d calls, sequential %d", oPar.Calls(), oSeq.Calls())
	}
}

// TestKNNGraphTiedDistances is the tied-distance regression test: with
// many candidates at exactly the k-th distance, sequential KNNGraph,
// parallel KNNGraphParallel at every worker count, and the brute-force
// (distance, id) reference must all agree — the canonical tie rule keeps
// the neighbour set independent of scan interleaving.
func TestKNNGraphTiedDistances(t *testing.T) {
	m := gridTieSpace(t, 5)
	const k = 4
	want := refKNN(m, k)

	for _, sc := range []core.Scheme{core.SchemeNoop, core.SchemeTri, core.SchemeSPLUB} {
		seq, _ := sessionFor(m, sc, nil)
		got := KNNGraph(seq, k)
		if !knnEqual(got, want) {
			t.Fatalf("scheme %v: sequential kNN diverged from reference under ties", sc)
		}
		for _, workers := range []int{1, 4, 8} {
			// Several repetitions: the interleaving (and hence the bound
			// tightening order) differs run to run.
			for rep := 0; rep < 3; rep++ {
				sh := core.Share(core.NewSession(metric.NewOracle(m), sc))
				gotP := KNNGraphParallel(sh, k, workers)
				if !knnEqual(gotP, want) {
					t.Fatalf("scheme %v, workers=%d: parallel kNN diverged from reference under ties", sc, workers)
				}
			}
		}
	}
}

// TestKNNGraphNonPositiveK pins the k ≤ 0 guard: both builders return one
// empty neighbour list per node instead of panicking or emitting lists
// built against an uninitialised threshold.
func TestKNNGraphNonPositiveK(t *testing.T) {
	m := datasets.RandomMetric(12, 55)
	for _, k := range []int{0, -3} {
		s, o := sessionFor(m, core.SchemeTri, nil)
		g := KNNGraph(s, k)
		sh := core.Share(core.NewSession(metric.NewOracle(m), core.SchemeTri))
		gp := KNNGraphParallel(sh, k, 4)
		if len(g) != 12 || len(gp) != 12 {
			t.Fatalf("k=%d: got %d/%d lists, want 12", k, len(g), len(gp))
		}
		for u := range g {
			if len(g[u]) != 0 || len(gp[u]) != 0 {
				t.Fatalf("k=%d: node %d has non-empty neighbours", k, u)
			}
		}
		if o.Calls() != 0 {
			t.Fatalf("k=%d: spent %d oracle calls on an empty graph", k, o.Calls())
		}
	}
}

func TestBoruvkaParallelMatchesSequential(t *testing.T) {
	m := datasets.RandomMetric(40, 56)
	for _, sc := range []core.Scheme{core.SchemeNoop, core.SchemeTri, core.SchemeSPLUB} {
		seq, _ := sessionFor(m, sc, nil)
		want := BoruvkaMST(seq)
		for _, workers := range []int{1, 4, 8} {
			sh := core.Share(core.NewSession(metric.NewOracle(m), sc))
			got := BoruvkaMSTParallel(sh, workers)
			if math.Abs(got.Weight-want.Weight) > 1e-12 || !sameEdges(got.Edges, want.Edges) {
				t.Fatalf("scheme %v, workers=%d: parallel Borůvka weight %v vs sequential %v",
					sc, workers, got.Weight, want.Weight)
			}
		}
	}
}

func TestBoruvkaParallelUnderLatency(t *testing.T) {
	// The same parity with a physically slow oracle — the regime the
	// unlocked resolve path exists for.
	m := datasets.RandomMetric(24, 57)
	seq, _ := sessionFor(m, core.SchemeTri, nil)
	want := BoruvkaMST(seq)

	inst := metric.NewInstrumented(m, 200*time.Microsecond)
	sh := core.Share(core.NewSession(metric.NewOracle(inst), core.SchemeTri))
	got := BoruvkaMSTParallel(sh, 8)
	if math.Abs(got.Weight-want.Weight) > 1e-12 || !sameEdges(got.Edges, want.Edges) {
		t.Fatalf("parallel Borůvka diverged under latency: %v vs %v", got.Weight, want.Weight)
	}
	if max := inst.MaxPairCalls(); max > 1 {
		t.Fatalf("some pair cost %d oracle calls, want at most 1", max)
	}
}

func TestPAMParallelMatchesSequential(t *testing.T) {
	m := datasets.RandomMetric(40, 58)
	const l, seed = 4, 99
	for _, sc := range []core.Scheme{core.SchemeNoop, core.SchemeTri} {
		seq, _ := sessionFor(m, sc, nil)
		want := PAM(seq, l, seed)
		for _, workers := range []int{1, 4, 8} {
			sh := core.Share(core.NewSession(metric.NewOracle(m), sc))
			got := PAMParallel(sh, l, seed, workers)
			if len(got.Medoids) != len(want.Medoids) {
				t.Fatalf("scheme %v, workers=%d: medoid count diverged", sc, workers)
			}
			for i := range want.Medoids {
				if got.Medoids[i] != want.Medoids[i] {
					t.Fatalf("scheme %v, workers=%d: medoids %v, want %v", sc, workers, got.Medoids, want.Medoids)
				}
			}
			for p := range want.Assign {
				if got.Assign[p] != want.Assign[p] {
					t.Fatalf("scheme %v, workers=%d: assignment diverged at point %d", sc, workers, p)
				}
			}
			if math.Abs(got.Cost-want.Cost) > 1e-12 {
				t.Fatalf("scheme %v, workers=%d: cost %v, want %v", sc, workers, got.Cost, want.Cost)
			}
		}
	}
}

// TestKNNGraphParallelSpeedup is the wall-clock acceptance criterion for
// the unlocked-oracle concurrency layer: with a 10ms injected oracle
// latency on the SF POI dataset, 8 workers must finish the kNN build at
// least 4× faster than 1 worker (the old lock-across-the-oracle design
// pinned this to ~1×), with zero duplicate oracle calls for any pair and
// neighbour sets identical to the sequential builder's.
func TestKNNGraphParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second latency-injection benchmark skipped in -short mode")
	}
	const (
		n       = 40
		k       = 3
		latency = 10 * time.Millisecond
	)
	m := datasets.SFPOI(n, 52)
	seqSession, _ := sessionFor(m, core.SchemeTri, nil)
	want := KNNGraph(seqSession, k)

	runAt := func(workers int) (time.Duration, [][]Neighbor, *metric.Instrumented) {
		inst := metric.NewInstrumented(m, latency)
		s := core.Share(core.NewSession(metric.NewOracle(inst), core.SchemeTri))
		start := time.Now()
		g := KNNGraphParallel(s, k, workers)
		return time.Since(start), g, inst
	}

	serial, gSerial, instSerial := runAt(1)
	parallel, gParallel, instParallel := runAt(8)

	if !knnEqual(gSerial, want) || !knnEqual(gParallel, want) {
		t.Fatal("latency-injected builds diverged from sequential KNNGraph")
	}
	for _, inst := range []*metric.Instrumented{instSerial, instParallel} {
		if max := inst.MaxPairCalls(); max > 1 {
			t.Fatalf("some pair cost %d oracle calls, want at most 1 (single-flight)", max)
		}
	}
	if speedup := float64(serial) / float64(parallel); speedup < 4 {
		t.Fatalf("8 workers only %.2fx faster than 1 (serial %v, parallel %v), want >= 4x",
			speedup, serial, parallel)
	}
}

func TestSharedSessionStats(t *testing.T) {
	m := datasets.RandomMetric(20, 54)
	o := metric.NewOracle(m)
	s := core.Share(core.NewSession(o, core.SchemeTri))
	s.Bootstrap(core.PickLandmarks(20, 4, 1))
	s.Dist(0, 1)
	s.Less(0, 2, 3, 4)
	s.LessThan(5, 6, 0.5)
	st := s.Stats()
	if st.OracleCalls != o.Calls() {
		t.Fatalf("stats count %d, oracle %d", st.OracleCalls, o.Calls())
	}
	if st.BootstrapCalls == 0 {
		t.Fatal("bootstrap not recorded through shared view")
	}
}
