package prox

import (
	"math"

	"metricprox/internal/core"
)

// KCenterResult is the output of the k-center facility allocation.
type KCenterResult struct {
	Centers []int
	Assign  []int   // point -> index into Centers
	Radius  float64 // max distance of any point to its center
}

// KCenter solves the metric k-center (facility allocation) problem with
// the Gonzalez farthest-first traversal — a 2-approximation, and one of
// the "more sophisticated optimization problems" the paper's conclusion
// proposes extending the framework to.
//
// The inner IF is `if dist(c, x) < minDist[x]` — the same shape as Prim's
// relaxation — so the re-authoring is identical: DistIfLess skips the
// oracle whenever the lower bound already exceeds the point's current
// distance-to-centers. Output is exact Gonzalez (identical across bound
// schemes).
func KCenter(s core.View, k int) KCenterResult {
	n := s.N()
	if k > n {
		k = n
	}
	minDist := make([]float64, n)
	assign := make([]int, n)
	for x := range minDist {
		minDist[x] = math.Inf(1)
	}
	res := KCenterResult{Assign: assign}

	c := 0 // deterministic first center
	for round := 0; round < k; round++ {
		res.Centers = append(res.Centers, c)
		minDist[c] = 0
		assign[c] = round
		for x := 0; x < n; x++ {
			if x == c || minDist[x] == 0 {
				continue
			}
			if d, less := s.DistIfLess(c, x, minDist[x]); less {
				minDist[x] = d
				assign[x] = round
			}
		}
		if round == k-1 {
			break
		}
		// Farthest-first: the next center is the point worst served. The
		// minDist values are exact resolved distances, so no calls here.
		far, farD := -1, -1.0
		for x := 0; x < n; x++ {
			if minDist[x] > farD {
				far, farD = x, minDist[x]
			}
		}
		c = far
	}
	for x := 0; x < n; x++ {
		if minDist[x] > res.Radius {
			res.Radius = minDist[x]
		}
	}
	return res
}
