package prox

import (
	"sort"

	"metricprox/internal/core"
)

// KNNGraph constructs the k-nearest-neighbour graph in the style of KNNrp
// (Paredes et al., "Practical construction of k-nearest neighbor graphs in
// metric spaces", WEA 2006): for each object the candidate objects are
// processed in ascending order of their current *lower bound*, and the scan
// stops as soon as the next candidate's lower bound reaches the running
// k-th-nearest distance — every remaining candidate is pruned wholesale.
// Bounds only tighten as edges resolve, so the early exit is sound.
//
// Each inner comparison is the paper's canonical IF: `is dist(u,v) smaller
// than the current k-th nearest distance?` — re-authored as
// Session.DistIfLess. Output: for every object, its k nearest neighbours
// sorted by (distance, id). Ties beyond position k resolve by object id,
// deterministically across schemes.
func KNNGraph(s *core.Session, k int) [][]Neighbor {
	n := s.N()
	if k >= n {
		k = n - 1
	}
	out := make([][]Neighbor, n)

	type cand struct {
		id int
		lb float64
	}
	cands := make([]cand, 0, n-1)

	for u := 0; u < n; u++ {
		cands = cands[:0]
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			lb, _ := s.Bounds(u, v)
			cands = append(cands, cand{id: v, lb: lb})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].lb != cands[b].lb {
				return cands[a].lb < cands[b].lb
			}
			return cands[a].id < cands[b].id
		})

		// Running top-k as a simple sorted slice (k is small).
		best := make([]Neighbor, 0, k+1)
		kth := s.MaxDistance() * 2 // +∞ until k candidates are in
		for _, c := range cands {
			if len(best) == k && c.lb >= kth {
				break // all remaining candidates have lb ≥ kth: pruned
			}
			threshold := kth
			if len(best) < k {
				threshold = s.MaxDistance() * 2
			}
			d, less := s.DistIfLess(u, c.id, threshold)
			if !less {
				continue
			}
			best = append(best, Neighbor{ID: c.id, Dist: d})
			sortNeighbors(best)
			if len(best) > k {
				best = best[:k]
			}
			if len(best) == k {
				kth = best[k-1].Dist
			}
		}
		out[u] = best
	}
	return out
}
