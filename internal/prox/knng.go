package prox

import (
	"sort"

	"metricprox/internal/core"
	"metricprox/internal/fcmp"
)

// KNNGraph constructs the k-nearest-neighbour graph in the style of KNNrp
// (Paredes et al., "Practical construction of k-nearest neighbor graphs in
// metric spaces", WEA 2006): for each object the candidate objects are
// processed in ascending order of their current *lower bound*, and the scan
// stops as soon as the next candidate's lower bound reaches the running
// k-th-nearest distance — every remaining candidate is pruned wholesale.
// Bounds only tighten as edges resolve, so the early exit is sound.
//
// Each inner comparison is the paper's canonical IF: `is dist(u,v) smaller
// than the current k-th nearest distance?` — re-authored as
// Session.DistIfLess. Output: for every object, its k nearest neighbours
// in the canonical (distance, id) order; ties at exactly the k-th distance
// resolve in favour of the smaller id, deterministically across schemes,
// worker counts, and scan interleavings. k ≤ 0 yields empty lists.
func KNNGraph(s core.View, k int) [][]Neighbor {
	n := s.N()
	if k >= n {
		k = n - 1
	}
	if k <= 0 {
		return emptyNeighborLists(n)
	}
	out := make([][]Neighbor, n)
	for u := 0; u < n; u++ {
		out[u] = knnForNode(s, u, k)
	}
	return out
}

// KNNRow returns the k nearest neighbours of the single object u, in the
// same canonical (distance, id) order as the matching row of KNNGraph.
// Exported so callers that need only part of the graph — the warm-restart
// tests drive half a build this way — pay only for the rows they ask for.
func KNNRow(s core.View, u, k int) []Neighbor {
	n := s.N()
	if k >= n {
		k = n - 1
	}
	if k <= 0 {
		return []Neighbor{}
	}
	return knnForNode(s, u, k)
}

// prefetchRow hints a remote view (core.BoundsPrefetcher) that the bounds
// of (u, v) for every v ≠ u are about to be read, collapsing what would be
// n−1 bound round-trips into one batch. A no-op for in-process sessions.
func prefetchRow(s core.View, u, n int) {
	p, ok := s.(core.BoundsPrefetcher)
	if !ok {
		return
	}
	pairs := make([]core.Pair, 0, n-1)
	for v := 0; v < n; v++ {
		if v != u {
			pairs = append(pairs, core.Pair{A: u, B: v})
		}
	}
	p.PrefetchBounds(pairs)
}

// emptyNeighborLists is the degenerate k ≤ 0 (or n ≤ 1) result: every
// object has an empty neighbour list.
func emptyNeighborLists(n int) [][]Neighbor {
	out := make([][]Neighbor, n)
	for i := range out {
		out[i] = []Neighbor{}
	}
	return out
}

// knnForNode runs the candidate scan for one node. It is shared verbatim
// by the sequential and parallel builders (core.View abstracts the
// session), which is what makes the single-worker parallel build match the
// sequential one call-for-call. Requires 0 < k < s.N().
//
// The scan maintains the running k-th neighbour as the pair (kth, kthID)
// and admits a candidate exactly when its (distance, id) precedes it
// lexicographically, so the returned set is the canonical k smallest
// (distance, id) pairs regardless of the order candidates resolve in.
func knnForNode(s core.View, u, k int) []Neighbor {
	n := s.N()
	prefetchRow(s, u, n)
	type cand struct {
		id int
		lb float64
	}
	cands := make([]cand, 0, n-1)
	for v := 0; v < n; v++ {
		if v == u {
			continue
		}
		lb, _ := s.Bounds(u, v)
		cands = append(cands, cand{id: v, lb: lb})
	}
	sort.Slice(cands, func(a, b int) bool {
		return fcmp.TieLess(cands[a].lb, cands[a].id, cands[b].lb, cands[b].id)
	})

	// Running top-k as a simple sorted slice (k is small).
	best := make([]Neighbor, 0, k+1)
	kth := s.MaxDistance() * 2 // +∞ until k candidates are in
	kthID := -1                // id of the current k-th neighbour
	for _, c := range cands {
		if len(best) == k && (c.lb > kth || (fcmp.ExactEq(c.lb, kth) && c.id > kthID)) {
			// Candidates are sorted by (lb, id): every remaining one has
			// d ≥ lb > kth, or ties at kth with an id that loses to the
			// incumbent k-th neighbour. All pruned wholesale.
			break
		}
		threshold := kth
		if len(best) < k {
			threshold = s.MaxDistance() * 2
		}
		d, less := s.DistIfLess(u, c.id, threshold)
		if !less {
			// d ≥ kth. A tie d == kth still wins when c.id beats the
			// incumbent k-th neighbour's id in the canonical order.
			if len(best) < k || c.id > kthID {
				continue
			}
			if w, ok := s.Known(u, c.id); ok {
				d = w // resolved by DistIfLess (or a concurrent worker)
			} else {
				lb, _ := s.Bounds(u, c.id)
				if lb > kth {
					continue // provably beyond the k-th distance
				}
				d = s.Dist(u, c.id)
			}
			if !fcmp.ExactEq(d, kth) {
				continue
			}
		}
		best = append(best, Neighbor{ID: c.id, Dist: d})
		sortNeighbors(best)
		if len(best) > k {
			best = best[:k]
		}
		if len(best) == k {
			kth = best[k-1].Dist
			kthID = best[k-1].ID
		}
	}
	return best
}
