package prox

import (
	"math"

	"metricprox/internal/core"
	"metricprox/internal/fcmp"
	"metricprox/internal/pgraph"
	"metricprox/internal/pqueue"
	"metricprox/internal/unionfind"
)

// MST is a minimum spanning tree over the complete distance graph.
type MST struct {
	Edges  []pgraph.Edge
	Weight float64
}

// PrimMST computes the MST with Prim's algorithm, re-authored per the
// paper: the inner IF statement `if dist(u,v) < key[v]` becomes
// Session.DistIfLess, so candidate edges whose lower bound already exceeds
// the current key are skipped without an oracle call. With the Noop scheme
// this resolves exactly C(n,2) distances — the paper's "Without Plug"
// column.
func PrimMST(s core.View) MST {
	n := s.N()
	inTree := make([]bool, n)
	key := make([]float64, n)
	parent := make([]int, n)
	for v := range key {
		key[v] = math.Inf(1)
		parent[v] = -1
	}

	inTree[0] = true
	u := 0
	var out MST
	prefetch, _ := s.(core.BoundsPrefetcher)
	pairs := make([]core.Pair, 0, n-1)
	for added := 1; added < n; added++ {
		// Hint a remote view at the whole relaxation row so its bounds
		// arrive in one batch instead of one round-trip per candidate.
		if prefetch != nil {
			pairs = pairs[:0]
			for v := 0; v < n; v++ {
				if !inTree[v] && v != u {
					pairs = append(pairs, core.Pair{A: u, B: v})
				}
			}
			prefetch.PrefetchBounds(pairs)
		}
		// Relax edges from the newly added vertex.
		for v := 0; v < n; v++ {
			if inTree[v] || v == u {
				continue
			}
			if d, less := s.DistIfLess(u, v, key[v]); less {
				key[v] = d
				parent[v] = u
			}
		}
		// Extract the minimum-key frontier vertex. Keys are exact resolved
		// distances, so no oracle calls happen here.
		best, bestKey := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !inTree[v] && key[v] < bestKey {
				best, bestKey = v, key[v]
			}
		}
		inTree[best] = true
		out.Edges = append(out.Edges, normEdge(parent[best], best, bestKey))
		out.Weight += bestKey
		u = best
	}
	return out
}

// PrimMSTLazy is the comparison-oriented re-authoring of Prim used by the
// DFT experiments (Figures 4a/4b): instead of keeping exact keys, every
// non-tree vertex keeps only a *candidate edge* into the tree, and both the
// relaxation and the minimum extraction are expressed as edge-versus-edge
// Session.Less comparisons. Only the n−1 chosen edges are ever resolved
// outright.
//
// This shape exposes the full power of joint reasoning: a comparison
// between two unresolved edges (the paper's `dist(o2,o6) < dist(o3,o5)`
// pattern) can be settled by DFT's linear-program feasibility even when the
// two edges' individual bound intervals overlap. Interval schemes (ADM,
// SPLUB, Tri) also work here, but can only prune the disjoint-interval
// cases. Output is the exact MST of PrimMST.
func PrimMSTLazy(s core.View) MST {
	n := s.N()
	inTree := make([]bool, n)
	cand := make([]int, n) // best-known tree endpoint for each frontier vertex
	inTree[0] = true
	for v := range cand {
		cand[v] = 0
	}
	var out MST
	for added := 1; added < n; added++ {
		best := -1
		for v := 0; v < n; v++ {
			if inTree[v] {
				continue
			}
			if best == -1 || s.Less(cand[v], v, cand[best], best) {
				best = v
			}
		}
		w := s.Dist(cand[best], best) // the chosen edge is resolved for output
		inTree[best] = true
		out.Edges = append(out.Edges, normEdge(cand[best], best, w))
		out.Weight += w
		for v := 0; v < n; v++ {
			if !inTree[v] && s.Less(best, v, cand[v], v) {
				cand[v] = best
			}
		}
	}
	return out
}

// KruskalMST computes the MST with a lazily-resolved Kruskal: the C(n,2)
// edges sit in a priority queue keyed by their current *lower bound*; an
// edge popped with both endpoints already connected is discarded without
// ever resolving it, and an unresolved edge at the top is first re-keyed
// by its (monotonically tightening) bound and only resolved when its lower
// bound is genuinely minimal. An exact edge at the top is safe to add: its
// weight is at most every other edge's lower bound, hence at most every
// other true weight. With the Noop scheme every considered edge resolves
// immediately, recovering the classic sort-everything behaviour.
func KruskalMST(s core.View) MST {
	n := s.N()
	h := pqueue.NewEdgeHeap(n * (n - 1) / 2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			lb, ub := s.Bounds(i, j)
			h.Push(pqueue.Edge{U: i, V: j, Key: lb, Exact: fcmp.ExactEq(lb, ub)})
		}
	}
	dsu := unionfind.New(n)
	var out MST
	const eps = 1e-15
	for len(out.Edges) < n-1 {
		e, ok := h.Pop()
		if !ok {
			break
		}
		if dsu.Connected(e.U, e.V) {
			continue // discarded with no oracle call
		}
		if !e.Exact {
			if lb, ub := s.Bounds(e.U, e.V); fcmp.ExactEq(lb, ub) {
				// Resolved as a side effect of earlier resolutions.
				h.Push(pqueue.Edge{U: e.U, V: e.V, Key: lb, Exact: true})
			} else if lb > e.Key+eps {
				// The bound tightened since the push; re-key, no call.
				h.Push(pqueue.Edge{U: e.U, V: e.V, Key: lb})
			} else {
				d := s.Dist(e.U, e.V)
				h.Push(pqueue.Edge{U: e.U, V: e.V, Key: d, Exact: true})
			}
			continue
		}
		dsu.Union(e.U, e.V)
		out.Edges = append(out.Edges, normEdge(e.U, e.V, e.Key))
		out.Weight += e.Key
	}
	return out
}

func normEdge(u, v int, w float64) pgraph.Edge {
	if u > v {
		u, v = v, u
	}
	return pgraph.Edge{U: u, V: v, W: w}
}
