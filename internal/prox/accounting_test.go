package prox

import (
	"testing"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

// TestStatsMatchOracleCalls cross-checks the two independent call counters:
// Session.Stats().OracleCalls (incremented by commitResolution inside the
// session) and metric.Oracle.Calls() (incremented by the oracle wrapper
// itself). The oracleescape analyzer guarantees statically that no code
// path reaches the oracle around the session; this test guarantees
// dynamically that the session's own bookkeeping never double-counts or
// drops a resolution across a full kNN + MST + PAM run.
func TestStatsMatchOracleCalls(t *testing.T) {
	m := datasets.SFPOI(70, 7)

	t.Run("sequential", func(t *testing.T) {
		o := metric.NewOracle(m)
		s := core.NewSession(o, core.SchemeTri)
		s.Bootstrap(core.PickLandmarks(s.N(), 6, 7))
		KNNGraph(s, 4)
		PrimMST(s)
		PAM(s, 5, 7)

		got, want := s.Stats().OracleCalls, o.Calls()
		if got != want {
			t.Fatalf("sequential: Stats.OracleCalls = %d, oracle counted %d", got, want)
		}
		if bs := s.Stats().BootstrapCalls; bs <= 0 || bs > got {
			t.Fatalf("sequential: BootstrapCalls = %d outside (0, %d]", bs, got)
		}
	})

	t.Run("shared", func(t *testing.T) {
		o := metric.NewOracle(m)
		sh := core.Share(core.NewSession(o, core.SchemeTri))
		sh.Bootstrap(core.PickLandmarks(sh.N(), 6, 7))
		KNNGraphParallel(sh, 4, 4)
		PAMParallel(sh, 5, 7, 4)

		got, want := sh.Stats().OracleCalls, o.Calls()
		if got != want {
			t.Fatalf("shared: Stats.OracleCalls = %d, oracle counted %d", got, want)
		}
	})
}
