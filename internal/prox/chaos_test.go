package prox

import (
	"errors"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/faultmetric"
	"metricprox/internal/metric"
	"metricprox/internal/resilient"
)

// The chaos harness runs the paper's algorithms over a deterministically
// faulty oracle and asserts the robustness subsystem's two contracts:
//
//  1. Output preservation: a run that completes with OracleErr() == nil
//     is identical to the fault-free run — retries change the cost of a
//     resolution, never its value, and nothing unresolved is committed.
//  2. Bounded, accountable retries: the resilient layer's counters must
//     reconcile exactly with the injector's ground-truth injection
//     counts, and the retry traffic must stay within the policy budget.
//
// Schemes covered: noop (no bounds — every comparison pays the oracle),
// tri and splub (the two shared-graph schemes, loose and tight). DFT is
// excluded: it is specified for tiny inputs and resolves its pivot
// structure eagerly, so a chaos run degenerates to a bootstrap-abort
// test with no comparison traffic left to exercise; the bootstrap-abort
// path has its own test in internal/core.

// chaosSeed returns the fault-schedule seed, overridable via CHAOS_SEED
// so CI can sweep a seed matrix without a rebuild.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	env := os.Getenv("CHAOS_SEED")
	if env == "" {
		return 1
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", env, err)
	}
	return seed
}

// chaosConfig is a fault schedule guaranteed to complete under
// chaosPolicy: at most 2 injected failures per pair against a budget of
// 4 attempts, with the breaker disabled so a burst of failures across
// many pairs cannot wedge the run. Roughly a third of first attempts
// misbehave.
func chaosConfig(seed int64) faultmetric.Config {
	return faultmetric.Config{
		Seed:               seed,
		TransientRate:      0.2,
		RateLimitRate:      0.08,
		CorruptRate:        0.08,
		MaxFailuresPerPair: 2,
	}
}

func chaosPolicy(seed int64) resilient.Policy {
	return resilient.Policy{
		MaxAttempts:      4,
		BaseDelay:        time.Microsecond,
		MaxDelay:         8 * time.Microsecond,
		FailureThreshold: -1, // breaker disabled: completion is the point here
		Seed:             seed,
	}
}

// chaosSession builds a session whose oracle chain is
// space → fault injector → resilient policy → session.
func chaosSession(m metric.Space, scheme core.Scheme, seed int64) (*core.Session, *faultmetric.Injector, *resilient.Oracle) {
	inj := faultmetric.New(m, chaosConfig(seed))
	ro := resilient.New(inj, chaosPolicy(seed))
	return core.NewFallibleSession(ro, scheme), inj, ro
}

var chaosSchemes = []core.Scheme{core.SchemeNoop, core.SchemeTri, core.SchemeSPLUB}

// chaosResult bundles one algorithm sweep's outputs for comparison.
type chaosResult struct {
	knn [][]Neighbor
	mst MST
	pam Clustering
}

func runAlgorithms(s *core.Session) chaosResult {
	return chaosResult{
		knn: KNNGraph(s, 3),
		mst: PrimMST(s),
		pam: PAM(s, 4, 99),
	}
}

// crossCheck reconciles the resilient layer's account against the
// injector's ground truth. It assumes the run completed (every needed
// resolution eventually succeeded), which the caller asserts via
// OracleErr.
func crossCheck(t *testing.T, label string, st core.Stats, inj *faultmetric.Injector, ro *resilient.Oracle) {
	t.Helper()
	ic := inj.Counters()
	pc := ro.Counters()
	if pc.Attempts != ic.Calls {
		t.Errorf("%s: policy made %d attempts but injector saw %d calls", label, pc.Attempts, ic.Calls)
	}
	if pc.Retries != ic.BadResponses() {
		t.Errorf("%s: policy retried %d times but injector injected %d bad responses",
			label, pc.Retries, ic.BadResponses())
	}
	if st.Retries != pc.Retries || st.Timeouts != pc.Timeouts || st.BreakerOpens != pc.BreakerOpens {
		t.Errorf("%s: session stats %+v do not mirror policy counters %+v", label, st, pc)
	}
	if pc.Successes != st.OracleCalls {
		t.Errorf("%s: %d policy successes but %d session oracle calls", label, pc.Successes, st.OracleCalls)
	}
	// Bounded retries: the budget caps the traffic amplification.
	maxAttempts := int64(chaosPolicy(0).Normalize().MaxAttempts)
	if pc.Attempts > pc.Successes*maxAttempts {
		t.Errorf("%s: %d attempts for %d successes exceeds the ×%d budget",
			label, pc.Attempts, pc.Successes, maxAttempts)
	}
	if st.DegradedAnswers != 0 {
		t.Errorf("%s: completed run reported %d degraded answers", label, st.DegradedAnswers)
	}
}

// TestChaosOutputPreservation is the harness's core assertion: under a
// seeded fault schedule that retries can always beat, every algorithm ×
// scheme combination produces output identical to the fault-free run.
func TestChaosOutputPreservation(t *testing.T) {
	seed := chaosSeed(t)
	const n = 48
	m := datasets.RandomMetric(n, 17)

	for _, scheme := range chaosSchemes {
		clean := runAlgorithms(core.NewSession(metric.NewOracle(m), scheme))

		s, inj, ro := chaosSession(m, scheme, seed)
		faulty := runAlgorithms(s)
		if err := s.OracleErr(); err != nil {
			t.Fatalf("scheme %v: chaos run did not complete: %v", scheme, err)
		}
		if !reflect.DeepEqual(clean.knn, faulty.knn) {
			t.Errorf("scheme %v: kNN graph diverged under faults", scheme)
		}
		if clean.mst.Weight != faulty.mst.Weight || !sameEdges(clean.mst.Edges, faulty.mst.Edges) {
			t.Errorf("scheme %v: MST diverged under faults (weight %v vs %v)",
				scheme, clean.mst.Weight, faulty.mst.Weight)
		}
		if !reflect.DeepEqual(clean.pam, faulty.pam) {
			t.Errorf("scheme %v: PAM clustering diverged under faults", scheme)
		}
		if inj.Counters().BadResponses() == 0 {
			t.Errorf("scheme %v: fault schedule injected nothing — harness is vacuous", scheme)
		}
		crossCheck(t, scheme.String(), s.Stats(), inj, ro)
	}
}

// TestChaosParallelOutputPreservation repeats the preservation assertion
// for the parallel builders over a SharedSession: concurrent retries,
// shared single-flight failures, and commit ordering must still produce
// the sequential fault-free output. Run under -race this doubles as the
// data-race check on the failure paths.
func TestChaosParallelOutputPreservation(t *testing.T) {
	seed := chaosSeed(t)
	const n, workers = 40, 4
	m := datasets.RandomMetric(n, 23)

	for _, scheme := range chaosSchemes {
		clean := runAlgorithms(core.NewSession(metric.NewOracle(m), scheme))

		s, inj, _ := chaosSession(m, scheme, seed)
		c := core.Share(s)
		knn := KNNGraphParallel(c, 3, workers)
		if !reflect.DeepEqual(clean.knn, knn) {
			t.Errorf("scheme %v: parallel kNN diverged under faults", scheme)
		}

		s2, _, _ := chaosSession(m, scheme, seed)
		mst := BoruvkaMSTParallel(core.Share(s2), workers)
		cleanBoruvka := BoruvkaMST(core.NewSession(metric.NewOracle(m), scheme))
		if mst.Weight != cleanBoruvka.Weight || !sameEdges(mst.Edges, cleanBoruvka.Edges) {
			t.Errorf("scheme %v: parallel Borůvka diverged under faults", scheme)
		}

		s3, _, _ := chaosSession(m, scheme, seed)
		pam := PAMParallel(core.Share(s3), 4, 99, workers)
		if !reflect.DeepEqual(clean.pam, pam) {
			t.Errorf("scheme %v: parallel PAM diverged under faults", scheme)
		}

		for _, sess := range []*core.Session{s, s2, s3} {
			if err := sess.OracleErr(); err != nil {
				t.Fatalf("scheme %v: parallel chaos run did not complete: %v", scheme, err)
			}
		}
		if inj.Counters().BadResponses() == 0 {
			t.Errorf("scheme %v: parallel fault schedule injected nothing", scheme)
		}
	}
}

// TestChaosConcurrentMixedWorkload hammers one SharedSession from many
// goroutines with mixed comparison traffic under faults — the shape most
// likely to trip races in the failure paths of the single-flight map.
func TestChaosConcurrentMixedWorkload(t *testing.T) {
	seed := chaosSeed(t)
	const n, workers = 32, 8
	m := datasets.RandomMetric(n, 31)
	s, _, _ := chaosSession(m, core.SchemeTri, seed)
	c := core.Share(s)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				j, k, l := (i+w+1)%n, (i+2*w+3)%n, (i+5)%n
				c.Less(i, j, k, l)
				c.LessThan(i, j, 0.5)
				if d, err := c.DistErr(i, k); err == nil {
					if want := m.Distance(i, k); d != want {
						t.Errorf("DistErr(%d,%d) = %v, want %v", i, k, d, want)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.OracleErr(); err != nil {
		t.Fatalf("mixed workload did not complete: %v", err)
	}
	// Every committed edge must be the exact backend distance.
	g := s.Graph()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w, ok := g.Weight(i, j); ok {
				if want := m.Distance(i, j); w != want {
					t.Fatalf("graph edge (%d,%d) = %v, want %v", i, j, w, want)
				}
			}
		}
	}
}

// TestChaosOutageDegradesGracefully puts the breaker in front of a
// permanently dying backend: after the outage begins, runs must still
// terminate, answers degrade (counted), the breaker opens at least once,
// and nothing inexact is ever committed to the graph.
func TestChaosOutageDegradesGracefully(t *testing.T) {
	const n = 32
	m := datasets.RandomMetric(n, 41)
	inj := faultmetric.New(m, faultmetric.Config{
		Seed:         chaosSeed(t),
		OutagePeriod: 1, // every call fails: the backend is gone
	})
	ro := resilient.New(inj, resilient.Policy{
		MaxAttempts:      2,
		BaseDelay:        time.Microsecond,
		MaxDelay:         4 * time.Microsecond,
		FailureThreshold: 3,
		Cooldown:         time.Hour, // stays open for the whole test
		Seed:             7,
	})
	s := core.NewFallibleSession(ro, core.SchemeTri)

	got := KNNGraph(s, 3) // must terminate despite a dead backend
	if len(got) != n {
		t.Fatalf("degraded kNN returned %d rows, want %d", len(got), n)
	}
	if s.OracleErr() == nil {
		t.Fatal("dead backend did not latch OracleErr")
	}
	st := s.Stats()
	if st.DegradedAnswers == 0 {
		t.Fatal("dead backend produced no degraded answers")
	}
	if st.BreakerOpens == 0 {
		t.Fatal("breaker never opened against a dead backend")
	}
	if ro.Ready() {
		t.Fatal("breaker reports ready mid-outage")
	}
	if st.OracleCalls != 0 {
		t.Fatalf("dead backend yielded %d committed resolutions", st.OracleCalls)
	}
	if g := s.Graph(); g.Edges() != nil && len(g.Edges()) != 0 {
		t.Fatalf("dead backend committed %d graph edges", len(g.Edges()))
	}
	// Fast-fails must dominate once the breaker opens: the backend sees
	// far fewer calls than the session asked for.
	if pc := ro.Counters(); pc.FastFails == 0 {
		t.Fatalf("breaker open but no fast-fails recorded: %+v", pc)
	}
}

// nearMetricConfig is the chaos schedule for the near-metric tests: no
// failures, only deterministic downward perturbations with additive
// margin ≤ NearMetricEps. The perturbation is keyed on the pair alone, so
// two injectors with the same seed serve the identical near-metric
// regardless of call order — which is what lets a noop run over one
// injector be the bit-exact reference for a slacked run over another.
func nearMetricConfig(seed int64) faultmetric.Config {
	return faultmetric.Config{Seed: seed, NearMetricEps: 0.25}
}

// TestChaosNearMetricSlackPreserve is the ε-slack preservation theorem,
// end to end: over an oracle violating the triangle inequality with
// margin ≤ ε, a session declaring SlackPolicy{Additive: ε} produces
// kNN/MST/PAM output bit-identical to the no-bounds reference over the
// same perturbed space. (Identity with the *clean* space is impossible by
// construction — the perturbed values appear in the output — so the
// reference is "what every comparison paid for exactly would conclude
// about this near-metric".)
func TestChaosNearMetricSlackPreserve(t *testing.T) {
	seed := chaosSeed(t)
	const n = 48
	m := datasets.RandomMetric(n, 17)
	cfg := nearMetricConfig(seed)

	ref := runAlgorithms(core.NewFallibleSession(faultmetric.New(m, cfg), core.SchemeNoop))

	aud := metric.NewAuditor(0)
	inj := faultmetric.New(m, cfg)
	s := core.NewFallibleSession(inj, core.SchemeTri,
		core.WithSlack(core.SlackPolicy{Additive: cfg.MarginBound()}),
		core.WithAuditor(aud))
	got := runAlgorithms(s)
	if err := s.OracleErr(); err != nil {
		t.Fatalf("near-metric slack run did not complete: %v", err)
	}
	if !reflect.DeepEqual(ref.knn, got.knn) {
		t.Error("kNN graph diverged under declared slack")
	}
	if ref.mst.Weight != got.mst.Weight || !sameEdges(ref.mst.Edges, got.mst.Edges) {
		t.Errorf("MST diverged under declared slack (weight %v vs %v)", ref.mst.Weight, got.mst.Weight)
	}
	if !reflect.DeepEqual(ref.pam, got.pam) {
		t.Error("PAM clustering diverged under declared slack")
	}
	// Non-vacuity: the schedule actually perturbed distances, the session
	// actually settled comparisons from relaxed bounds, and the auditor
	// actually saw violations on committed triangles.
	if inj.Counters().Perturbations == 0 {
		t.Error("near-metric schedule perturbed nothing — harness is vacuous")
	}
	st := s.Stats()
	if st.SlackResolved == 0 {
		t.Error("no comparison was resolved under slack — harness is vacuous")
	}
	if st.Violations == 0 {
		t.Error("auditor observed no violations — harness is vacuous")
	}
	// And the injector kept its contract: observed margins never exceed
	// the declared bound (otherwise the preservation above was luck).
	if aud.Margin() > cfg.MarginBound()+1e-12 {
		t.Errorf("observed margin %v exceeds the declared bound %v", aud.Margin(), cfg.MarginBound())
	}
}

// TestChaosNearMetricStrictDetect runs the same perturbed oracle with an
// auditor but NO slack declaration: strict mode must surface the typed
// violation error, voiding the run's preservation guarantee instead of
// silently returning wrong answers.
func TestChaosNearMetricStrictDetect(t *testing.T) {
	seed := chaosSeed(t)
	const n = 48
	m := datasets.RandomMetric(n, 17)
	cfg := nearMetricConfig(seed)

	aud := metric.NewAuditor(0)
	s := core.NewFallibleSession(faultmetric.New(m, cfg), core.SchemeTri,
		core.WithAuditor(aud))
	runAlgorithms(s)

	err := s.ViolationErr()
	if err == nil {
		t.Fatal("strict mode did not detect the injected violations")
	}
	if !errors.Is(err, metric.ErrNonMetric) {
		t.Fatalf("ViolationErr %v does not wrap metric.ErrNonMetric", err)
	}
	var ve *metric.ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("ViolationErr %T is not *metric.ViolationError", err)
	}
	if ve.Margin <= 0 || ve.Margin > cfg.MarginBound() {
		t.Fatalf("latched margin %v outside (0, %v]", ve.Margin, cfg.MarginBound())
	}
	if st := s.Stats(); st.Violations == 0 {
		t.Fatal("Stats.Violations is zero despite a latched violation")
	}
}
