package prox

import (
	"math"
	"testing"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/obs"
)

// talliesByOutcome folds a tracer's exact tallies into per-outcome counts
// and checks every gap sum is finite on the way.
func talliesByOutcome(t *testing.T, tr *obs.Tracer) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	for _, tl := range tr.Tallies() {
		if math.IsInf(tl.GapSum, 0) || math.IsNaN(tl.GapSum) {
			t.Fatalf("tally %s/%s has non-finite GapSum %g", tl.Op, tl.Outcome, tl.GapSum)
		}
		out[tl.Outcome] += tl.Count
	}
	return out
}

// TestObsReconciliation runs a real workload three ways at once —
// metric.Instrumented ground truth underneath, the legacy Stats snapshot,
// and the obs registry + tracer on top — and requires all three views to
// agree exactly. This is the dynamic half of the write-only-observation
// invariant: the obs layer must count precisely what happened, and
// attaching it must not change what happens.
func TestObsReconciliation(t *testing.T) {
	m := datasets.SFPOI(70, 7)

	t.Run("sequential", func(t *testing.T) {
		instr := metric.NewInstrumented(m, 0)
		o := metric.NewOracle(instr)
		observer := obs.NewObserver(true, 256, nil)
		s := core.NewSession(o, core.SchemeTri, core.WithObserver(observer))
		s.Bootstrap(core.PickLandmarks(s.N(), 6, 7))
		KNNGraph(s, 4)
		PrimMST(s)

		st := s.Stats()
		reg := observer.Registry
		scheme := obs.L("scheme", "tri")
		run := reg.Counter(obs.MetricOracleCalls, scheme, obs.L("phase", obs.PhaseRun)).Value()
		boot := reg.Counter(obs.MetricOracleCalls, scheme, obs.L("phase", obs.PhaseBootstrap)).Value()

		// Ground truth first: every oracle call resolved one distinct
		// pair, exactly once.
		if mx := instr.MaxPairCalls(); mx != 1 {
			t.Fatalf("Instrumented saw a pair resolved %d times; single-flight broke", mx)
		}
		if dp := int64(instr.DistinctPairs()); dp != st.OracleCalls {
			t.Fatalf("Instrumented resolved %d distinct pairs, Stats.OracleCalls = %d", dp, st.OracleCalls)
		}
		if o.Calls() != st.OracleCalls {
			t.Fatalf("oracle counted %d calls, Stats.OracleCalls = %d", o.Calls(), st.OracleCalls)
		}

		// Registry == Stats, field by field.
		if run+boot != st.OracleCalls || boot != st.BootstrapCalls {
			t.Fatalf("registry oracle calls run=%d boot=%d, Stats = %d (boot %d)", run, boot, st.OracleCalls, st.BootstrapCalls)
		}
		for _, c := range []struct {
			name string
			want int64
		}{
			{obs.MetricBoundProbes, st.BoundProbes},
			{obs.MetricSaved, st.SavedComparisons},
			{obs.MetricResolved, st.ResolvedComparisons},
			{obs.MetricCacheHits, st.CacheHits},
			{obs.MetricDegraded, 0},
			{obs.MetricStoreErrors, 0},
		} {
			if got := reg.Counter(c.name, scheme).Value(); got != c.want {
				t.Errorf("registry %s = %d, Stats says %d", c.name, got, c.want)
			}
		}

		// Tracer == Stats: each comparison emitted exactly one event, so
		// the per-outcome tallies are the Stats counters under new names.
		byOutcome := talliesByOutcome(t, observer.Tracer)
		if byOutcome[obs.OutcomeCache] != st.CacheHits {
			t.Errorf("trace cache events = %d, Stats.CacheHits = %d", byOutcome[obs.OutcomeCache], st.CacheHits)
		}
		if byOutcome[obs.OutcomeBounds] != st.SavedComparisons {
			t.Errorf("trace bounds events = %d, Stats.SavedComparisons = %d", byOutcome[obs.OutcomeBounds], st.SavedComparisons)
		}
		if byOutcome[obs.OutcomeOracle] != st.ResolvedComparisons {
			t.Errorf("trace oracle events = %d, Stats.ResolvedComparisons = %d", byOutcome[obs.OutcomeOracle], st.ResolvedComparisons)
		}
		if byOutcome[obs.OutcomeDegraded] != 0 || byOutcome[obs.OutcomeError] != 0 {
			t.Errorf("infallible run traced %d degraded / %d error events, want none",
				byOutcome[obs.OutcomeDegraded], byOutcome[obs.OutcomeError])
		}

		// Observed sessions time oracle round-trips: one histogram sample
		// per run-phase oracle comparison plus bootstrap resolutions is an
		// implementation detail, but the count can never exceed calls.
		h := reg.Histogram(obs.MetricOracleLatency, scheme).Snapshot()
		if h.Count == 0 || h.Count > st.OracleCalls {
			t.Errorf("latency histogram count = %d outside (0, %d]", h.Count, st.OracleCalls)
		}
	})

	t.Run("shared", func(t *testing.T) {
		instr := metric.NewInstrumented(m, 0)
		o := metric.NewOracle(instr)
		observer := obs.NewObserver(true, 256, nil)
		sh := core.Share(core.NewSession(o, core.SchemeTri, core.WithObserver(observer)))
		sh.Bootstrap(core.PickLandmarks(sh.N(), 6, 7))
		KNNGraphParallel(sh, 4, 4)

		st := sh.Stats()
		reg := observer.Registry
		scheme := obs.L("scheme", "tri")
		run := reg.Counter(obs.MetricOracleCalls, scheme, obs.L("phase", obs.PhaseRun)).Value()
		boot := reg.Counter(obs.MetricOracleCalls, scheme, obs.L("phase", obs.PhaseBootstrap)).Value()

		if mx := instr.MaxPairCalls(); mx != 1 {
			t.Fatalf("shared: Instrumented saw a pair resolved %d times; single-flight broke", mx)
		}
		if dp := int64(instr.DistinctPairs()); dp != st.OracleCalls {
			t.Fatalf("shared: Instrumented resolved %d distinct pairs, Stats.OracleCalls = %d", dp, st.OracleCalls)
		}
		if run+boot != st.OracleCalls {
			t.Fatalf("shared: registry oracle calls = %d, Stats = %d", run+boot, st.OracleCalls)
		}
		if got := reg.Counter(obs.MetricSaved, scheme).Value(); got != st.SavedComparisons {
			t.Errorf("shared: registry saved = %d, Stats = %d", got, st.SavedComparisons)
		}
		if got := reg.Counter(obs.MetricResolved, scheme).Value(); got != st.ResolvedComparisons {
			t.Errorf("shared: registry resolved = %d, Stats = %d", got, st.ResolvedComparisons)
		}

		byOutcome := talliesByOutcome(t, observer.Tracer)
		if byOutcome[obs.OutcomeOracle] != st.ResolvedComparisons {
			t.Errorf("shared: trace oracle events = %d, Stats.ResolvedComparisons = %d",
				byOutcome[obs.OutcomeOracle], st.ResolvedComparisons)
		}
		if byOutcome[obs.OutcomeBounds] != st.SavedComparisons {
			t.Errorf("shared: trace bounds events = %d, Stats.SavedComparisons = %d",
				byOutcome[obs.OutcomeBounds], st.SavedComparisons)
		}
	})
}

// TestObserverDoesNotChangeOutput is the output-preservation half: the
// same seeded workload with and without full observation must produce
// bit-identical results and identical call counts.
func TestObserverDoesNotChangeOutput(t *testing.T) {
	m := datasets.SFPOI(80, 11)
	runOnce := func(observer *obs.Observer) (float64, int64) {
		o := metric.NewOracle(m)
		var opts []core.Option
		if observer != nil {
			opts = append(opts, core.WithObserver(observer))
		}
		s := core.NewSession(o, core.SchemeTri, opts...)
		s.Bootstrap(core.PickLandmarks(s.N(), 6, 11))
		return PrimMST(s).Weight, s.Stats().OracleCalls
	}
	wPlain, cPlain := runOnce(nil)
	wObs, cObs := runOnce(obs.NewObserver(true, 0, nil))
	// floatcmp skips test files, so this deliberate bit-exact
	// output-preservation check needs no allow directive.
	if wPlain != wObs {
		t.Fatalf("MST weight changed under observation: %v vs %v", wPlain, wObs)
	}
	if cPlain != cObs {
		t.Fatalf("oracle calls changed under observation: %d vs %d", cPlain, cObs)
	}
}

// BenchmarkObservation measures the wall-clock cost of observation on a
// full Prim build (the ≤5% overhead budget of DESIGN.md §8). Run with:
//
//	go test ./internal/prox -bench Observation -benchtime 10x
func BenchmarkObservation(b *testing.B) {
	m := datasets.SFPOI(200, 3)
	lms := core.PickLandmarks(200, 8, 3)
	run := func(b *testing.B, mk func() []core.Option) {
		for i := 0; i < b.N; i++ {
			s := core.NewSession(metric.NewOracle(m), core.SchemeTri, mk()...)
			s.Bootstrap(lms)
			PrimMST(s)
		}
	}
	b.Run("baseline", func(b *testing.B) {
		run(b, func() []core.Option { return nil })
	})
	b.Run("metrics", func(b *testing.B) {
		run(b, func() []core.Option {
			return []core.Option{core.WithObserver(obs.NewObserver(false, 0, nil))}
		})
	})
	b.Run("metrics+trace", func(b *testing.B) {
		run(b, func() []core.Option {
			return []core.Option{core.WithObserver(obs.NewObserver(true, 0, nil))}
		})
	})
}
