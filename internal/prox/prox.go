// Package prox implements the proximity algorithms evaluated in the paper —
// Prim's and Kruskal's MST, a KNNrp-style k-nearest-neighbour graph
// construction, and the PAM and CLARANS medoid clusterings — re-authored
// against the core.Session comparison API per the paper's practitioner
// guide.
//
// Each algorithm is written exactly once: running it over a Session with
// the Noop scheme reproduces the unmodified ("Without Plug") algorithm,
// while any other scheme saves oracle calls without changing the output.
// The package tests assert this output identity across all schemes.
package prox

import (
	"sort"

	"metricprox/internal/fcmp"
)

// Neighbor is one entry of a k-nearest-neighbour list.
type Neighbor struct {
	ID   int
	Dist float64
}

// sortNeighbors orders by (distance, id) for deterministic output.
func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(a, b int) bool {
		return fcmp.TieLess(ns[a].Dist, ns[a].ID, ns[b].Dist, ns[b].ID)
	})
}

// SortNeighbors orders a neighbour list by the canonical (distance, id)
// rule every builder in this repository resolves ties with. Exported for
// the packages that share Neighbor as their result type — the nsw
// search-graph builder keeps its adjacency in this order so traversal is
// deterministic.
func SortNeighbors(ns []Neighbor) { sortNeighbors(ns) }
