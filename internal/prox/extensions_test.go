package prox

import (
	"math"
	"testing"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

// --- KCenter ---

// refKCenter mirrors the Gonzalez traversal directly over the matrix.
func refKCenter(m metric.Space, k int) KCenterResult {
	n := m.Len()
	minDist := make([]float64, n)
	assign := make([]int, n)
	for x := range minDist {
		minDist[x] = math.Inf(1)
	}
	var res KCenterResult
	res.Assign = assign
	c := 0
	for round := 0; round < k; round++ {
		res.Centers = append(res.Centers, c)
		minDist[c] = 0
		assign[c] = round
		for x := 0; x < n; x++ {
			if d := m.Distance(c, x); d < minDist[x] {
				minDist[x] = d
				assign[x] = round
			}
		}
		far, farD := -1, -1.0
		for x := 0; x < n; x++ {
			if minDist[x] > farD {
				far, farD = x, minDist[x]
			}
		}
		c = far
	}
	for x := 0; x < n; x++ {
		if minDist[x] > res.Radius {
			res.Radius = minDist[x]
		}
	}
	return res
}

func TestKCenterMatchesReference(t *testing.T) {
	m := datasets.RandomMetric(50, 41)
	want := refKCenter(m, 5)
	for _, sc := range []core.Scheme{core.SchemeNoop, core.SchemeTri, core.SchemeSPLUB} {
		s, _ := sessionFor(m, sc, nil)
		got := KCenter(s, 5)
		if math.Abs(got.Radius-want.Radius) > 1e-12 {
			t.Fatalf("scheme %v: radius %v, want %v", sc, got.Radius, want.Radius)
		}
		for i := range want.Centers {
			if got.Centers[i] != want.Centers[i] {
				t.Fatalf("scheme %v: centers %v, want %v", sc, got.Centers, want.Centers)
			}
		}
	}
}

func TestKCenterSavesCalls(t *testing.T) {
	m := datasets.UrbanGB(120, 42)
	noop, oN := sessionFor(m, core.SchemeNoop, nil)
	KCenter(noop, 8)
	tri, oT := sessionFor(m, core.SchemeTri, nil)
	KCenter(tri, 8)
	if oT.Calls() >= oN.Calls() {
		t.Fatalf("Tri k-center made %d calls, Noop %d", oT.Calls(), oN.Calls())
	}
}

func TestKCenterDegenerate(t *testing.T) {
	m := datasets.RandomMetric(6, 43)
	s, _ := sessionFor(m, core.SchemeTri, nil)
	res := KCenter(s, 10) // k > n clamps
	if len(res.Centers) != 6 || res.Radius != 0 {
		t.Fatalf("k>n: %d centers, radius %v", len(res.Centers), res.Radius)
	}
}

// --- TSP ---

func tourValid(t *testing.T, tour Tour, n int) {
	t.Helper()
	if len(tour.Order) != n {
		t.Fatalf("tour visits %d cities, want %d", len(tour.Order), n)
	}
	seen := make([]bool, n)
	for _, c := range tour.Order {
		if seen[c] {
			t.Fatalf("city %d visited twice", c)
		}
		seen[c] = true
	}
}

func tourLength(m metric.Space, order []int) float64 {
	sum := 0.0
	for i := range order {
		sum += m.Distance(order[i], order[(i+1)%len(order)])
	}
	return sum
}

func TestTSPApprox(t *testing.T) {
	m := datasets.RandomMetric(40, 44)
	s, _ := sessionFor(m, core.SchemeTri, nil)
	tour := TSPApprox(s)
	tourValid(t, tour, 40)
	if math.Abs(tour.Length-tourLength(m, tour.Order)) > 1e-9 {
		t.Fatalf("tour length %v, recomputed %v", tour.Length, tourLength(m, tour.Order))
	}
	// 2-approximation guarantee: tour ≤ 2 × MST weight... and MST ≤ tour.
	ref, _ := sessionFor(m, core.SchemeNoop, nil)
	mst := PrimMST(ref)
	if tour.Length > 2*mst.Weight+1e-9 {
		t.Fatalf("tour %v exceeds 2×MST %v", tour.Length, 2*mst.Weight)
	}
	if tour.Length < mst.Weight-1e-9 {
		t.Fatalf("tour %v below MST weight %v — impossible", tour.Length, mst.Weight)
	}
}

func TestTSPNearestNeighbourIdenticalAcrossSchemes(t *testing.T) {
	m := datasets.RandomMetric(35, 45)
	base, _ := sessionFor(m, core.SchemeNoop, nil)
	want := TSPNearestNeighbour(base)
	tourValid(t, want, 35)
	for _, sc := range []core.Scheme{core.SchemeTri, core.SchemeSPLUB} {
		s, _ := sessionFor(m, sc, nil)
		got := TSPNearestNeighbour(s)
		for i := range want.Order {
			if got.Order[i] != want.Order[i] {
				t.Fatalf("scheme %v: tour diverged at position %d", sc, i)
			}
		}
	}
}

func TestTSPNearestNeighbourSavesCalls(t *testing.T) {
	m := datasets.SFPOI(100, 46)
	noop, oN := sessionFor(m, core.SchemeNoop, nil)
	TSPNearestNeighbour(noop)
	tri, oT := sessionFor(m, core.SchemeTri, nil)
	TSPNearestNeighbour(tri)
	if oT.Calls() >= oN.Calls() {
		t.Fatalf("Tri NN-tour made %d calls, Noop %d", oT.Calls(), oN.Calls())
	}
}

func TestTwoOptImprovesAndMatches(t *testing.T) {
	m := datasets.RandomMetric(30, 47)
	base, _ := sessionFor(m, core.SchemeNoop, nil)
	start := TSPNearestNeighbour(base)
	improvedBase := TwoOpt(base, start, 10)
	tourValid(t, improvedBase, 30)
	if improvedBase.Length > start.Length+1e-9 {
		t.Fatalf("2-opt worsened the tour: %v -> %v", start.Length, improvedBase.Length)
	}
	// Identical trajectory under bounds.
	tri, oT := sessionFor(m, core.SchemeTri, nil)
	startTri := TSPNearestNeighbour(tri)
	improvedTri := TwoOpt(tri, startTri, 10)
	if math.Abs(improvedTri.Length-improvedBase.Length) > 1e-9 {
		t.Fatalf("2-opt diverged across schemes: %v vs %v", improvedTri.Length, improvedBase.Length)
	}
	_ = oT
}

// --- Single linkage ---

func TestSingleLinkageStructure(t *testing.T) {
	m := datasets.RandomMetric(25, 48)
	s, _ := sessionFor(m, core.SchemeTri, nil)
	d := SingleLinkage(s)
	if d.N != 25 || len(d.Merges) != 24 {
		t.Fatalf("dendrogram has %d merges over %d leaves", len(d.Merges), d.N)
	}
	// Merge distances are nondecreasing.
	for i := 1; i < len(d.Merges); i++ {
		if d.Merges[i].Dist < d.Merges[i-1].Dist {
			t.Fatalf("merge distances not sorted at %d", i)
		}
	}
	// Cut below the first merge: all singletons. Above the last: one cluster.
	if got := d.Clusters(d.Merges[0].Dist / 2); got != 25 {
		t.Fatalf("cut below first merge: %d clusters, want 25", got)
	}
	if got := d.Clusters(1.1); got != 1 {
		t.Fatalf("cut above last merge: %d clusters, want 1", got)
	}
	// Cutting between merge i and i+1 yields n-(i+1) clusters (distinct
	// weights assumed — continuous data).
	mid := (d.Merges[10].Dist + d.Merges[11].Dist) / 2
	if got := d.Clusters(mid); got != 25-11 {
		t.Fatalf("cut after 11 merges: %d clusters, want %d", got, 25-11)
	}
}

func TestSingleLinkageFindsPlantedClusters(t *testing.T) {
	// Two tight groups far apart must separate at a 2-cluster cut.
	pts := [][]float64{
		{0.01}, {0.02}, {0.03}, {0.04},
		{0.91}, {0.92}, {0.93}, {0.94},
	}
	v := metric.NewVectors(pts, 1, 1)
	o := metric.NewOracle(v)
	s := core.NewSession(o, core.SchemeTri)
	d := SingleLinkage(s)
	labels := d.CutAt(0.5)
	for i := 1; i < 4; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("group A split: %v", labels)
		}
	}
	for i := 5; i < 8; i++ {
		if labels[i] != labels[4] {
			t.Fatalf("group B split: %v", labels)
		}
	}
	if labels[0] == labels[4] {
		t.Fatalf("groups merged: %v", labels)
	}
}

// --- Boruvka ---

func TestBoruvkaMatchesPrim(t *testing.T) {
	m := datasets.RandomMetric(26, 49)
	ref, _ := sessionFor(m, core.SchemeNoop, nil)
	want := PrimMST(ref)
	for _, sc := range []core.Scheme{core.SchemeNoop, core.SchemeTri, core.SchemeSPLUB} {
		s, _ := sessionFor(m, sc, nil)
		got := BoruvkaMST(s)
		if math.Abs(got.Weight-want.Weight) > 1e-9 || !sameEdges(got.Edges, want.Edges) {
			t.Fatalf("scheme %v: Boruvka weight %v vs Prim %v", sc, got.Weight, want.Weight)
		}
	}
}

func TestBoruvkaSavesCalls(t *testing.T) {
	m := datasets.UrbanGB(64, 50)
	noop, oN := sessionFor(m, core.SchemeNoop, nil)
	BoruvkaMST(noop)
	tri, oT := sessionFor(m, core.SchemeTri, nil)
	BoruvkaMST(tri)
	if oT.Calls() >= oN.Calls() {
		t.Fatalf("Tri Boruvka made %d calls, Noop %d", oT.Calls(), oN.Calls())
	}
}

// --- PAM BUILD ---

func TestPAMBuildIdenticalAcrossSchemes(t *testing.T) {
	m := datasets.RandomMetric(36, 55)
	base, _ := sessionFor(m, core.SchemeNoop, nil)
	want := PAMBuild(base, 4)
	for _, sc := range []core.Scheme{core.SchemeTri, core.SchemeSPLUB} {
		s, _ := sessionFor(m, sc, nil)
		got := PAMBuild(s, 4)
		if math.Abs(got.Cost-want.Cost) > 1e-9 {
			t.Fatalf("scheme %v: cost %v vs %v", sc, got.Cost, want.Cost)
		}
		for i := range want.Medoids {
			if got.Medoids[i] != want.Medoids[i] {
				t.Fatalf("scheme %v: medoids %v vs %v", sc, got.Medoids, want.Medoids)
			}
		}
	}
}

func TestPAMBuildFirstMedoidIsSumMinimiser(t *testing.T) {
	m := datasets.RandomMetric(20, 56)
	s, _ := sessionFor(m, core.SchemeNoop, nil)
	res := PAMBuild(s, 1)
	// With l=1 and no improving swap possible below the 1-medoid optimum
	// reachable by swaps, BUILD's first pick must be the sum minimiser and
	// the swap phase can only improve or keep it.
	bestSum, best := math.Inf(1), -1
	for c := 0; c < 20; c++ {
		sum := 0.0
		for x := 0; x < 20; x++ {
			sum += m.Distance(c, x)
		}
		if sum < bestSum {
			bestSum, best = sum, c
		}
	}
	if res.Medoids[0] != best {
		t.Fatalf("l=1 medoid %d, want global sum minimiser %d", res.Medoids[0], best)
	}
	if math.Abs(res.Cost-bestSum) > 1e-9 {
		t.Fatalf("cost %v, want %v", res.Cost, bestSum)
	}
}

func TestPAMBuildNoWorseThanRandomInit(t *testing.T) {
	m := datasets.UrbanGB(60, 57)
	sb, _ := sessionFor(m, core.SchemeTri, nil)
	build := PAMBuild(sb, 6)
	sr, _ := sessionFor(m, core.SchemeTri, nil)
	random := PAM(sr, 6, 3)
	// Both converge to local optima; BUILD should land at least as good a
	// cost in the common case. Allow equality and tiny slack: the claim we
	// enforce is "not catastrophically worse".
	if build.Cost > random.Cost*1.2 {
		t.Fatalf("BUILD cost %v far above random-init cost %v", build.Cost, random.Cost)
	}
}
