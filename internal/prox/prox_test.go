package prox

import (
	"math"
	"sort"
	"testing"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/pgraph"
)

// refMST is a reference Prim over the raw matrix (no session machinery).
func refMST(m *metric.Matrix) MST {
	n := m.Len()
	inTree := make([]bool, n)
	key := make([]float64, n)
	parent := make([]int, n)
	for i := range key {
		key[i] = math.Inf(1)
		parent[i] = -1
	}
	inTree[0] = true
	for v := 1; v < n; v++ {
		key[v] = m.Distance(0, v)
		parent[v] = 0
	}
	var out MST
	for added := 1; added < n; added++ {
		best, bestKey := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !inTree[v] && key[v] < bestKey {
				best, bestKey = v, key[v]
			}
		}
		inTree[best] = true
		out.Edges = append(out.Edges, normEdge(parent[best], best, bestKey))
		out.Weight += bestKey
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := m.Distance(best, v); d < key[v] {
					key[v] = d
					parent[v] = best
				}
			}
		}
	}
	return out
}

func edgeSet(es []pgraph.Edge) map[[2]int]bool {
	s := map[[2]int]bool{}
	for _, e := range es {
		s[[2]int{e.U, e.V}] = true
	}
	return s
}

func sameEdges(a, b []pgraph.Edge) bool {
	sa, sb := edgeSet(a), edgeSet(b)
	if len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}

func sessionFor(m metric.Space, scheme core.Scheme, landmarks []int) (*core.Session, *metric.Oracle) {
	o := metric.NewOracle(m)
	s := core.NewSessionWithLandmarks(o, scheme, landmarks)
	return s, o
}

var allGraphSchemes = []core.Scheme{
	core.SchemeNoop, core.SchemeSPLUB, core.SchemeTri,
	core.SchemeADM, core.SchemeLAESA, core.SchemeTLAESA,
}

func TestPrimMatchesReference(t *testing.T) {
	m := datasets.RandomMetric(30, 1)
	want := refMST(m)
	s, _ := sessionFor(m, core.SchemeNoop, nil)
	got := PrimMST(s)
	if math.Abs(got.Weight-want.Weight) > 1e-9 || !sameEdges(got.Edges, want.Edges) {
		t.Fatalf("Prim weight %v vs reference %v, edges match: %v",
			got.Weight, want.Weight, sameEdges(got.Edges, want.Edges))
	}
}

func TestPrimOutputIdenticalAcrossSchemes(t *testing.T) {
	m := datasets.RandomMetric(24, 2)
	want := refMST(m)
	landmarks := core.PickLandmarks(24, 5, 7)
	for _, sc := range allGraphSchemes {
		s, _ := sessionFor(m, sc, landmarks)
		s.Bootstrap(landmarks)
		got := PrimMST(s)
		if math.Abs(got.Weight-want.Weight) > 1e-9 || !sameEdges(got.Edges, want.Edges) {
			t.Fatalf("scheme %v: MST diverged (weight %v vs %v)", sc, got.Weight, want.Weight)
		}
	}
}

func TestPrimWithoutPlugResolvesAllPairs(t *testing.T) {
	n := 20
	m := datasets.RandomMetric(n, 3)
	s, o := sessionFor(m, core.SchemeNoop, nil)
	PrimMST(s)
	if want := int64(n * (n - 1) / 2); o.Calls() != want {
		t.Fatalf("Without Plug Prim made %d calls, want %d", o.Calls(), want)
	}
}

func TestPrimTriSavesCalls(t *testing.T) {
	n := 64
	m := datasets.SFPOI(n, 4)
	noop, oN := sessionFor(m, core.SchemeNoop, nil)
	PrimMST(noop)
	tri, oT := sessionFor(m, core.SchemeTri, nil)
	PrimMST(tri)
	if oT.Calls() >= oN.Calls() {
		t.Fatalf("Tri Prim made %d calls, Noop %d — no savings", oT.Calls(), oN.Calls())
	}
}

func TestKruskalMatchesPrim(t *testing.T) {
	m := datasets.RandomMetric(28, 5)
	want := refMST(m)
	for _, sc := range []core.Scheme{core.SchemeNoop, core.SchemeTri, core.SchemeSPLUB} {
		s, _ := sessionFor(m, sc, nil)
		got := KruskalMST(s)
		if math.Abs(got.Weight-want.Weight) > 1e-9 || !sameEdges(got.Edges, want.Edges) {
			t.Fatalf("scheme %v: Kruskal weight %v vs reference %v", sc, got.Weight, want.Weight)
		}
	}
}

func TestKruskalTriSavesCalls(t *testing.T) {
	n := 48
	m := datasets.UrbanGB(n, 6)
	landmarks := core.PickLandmarks(n, 6, 8)
	noop, oN := sessionFor(m, core.SchemeNoop, nil)
	KruskalMST(noop)
	tri, oT := sessionFor(m, core.SchemeTri, landmarks)
	tri.Bootstrap(landmarks)
	KruskalMST(tri)
	if oT.Calls() >= oN.Calls() {
		t.Fatalf("Tri Kruskal made %d calls, Noop %d", oT.Calls(), oN.Calls())
	}
}

func TestMSTTinyUniverse(t *testing.T) {
	m := datasets.RandomMetric(2, 7)
	s, _ := sessionFor(m, core.SchemeTri, nil)
	got := PrimMST(s)
	if len(got.Edges) != 1 || math.Abs(got.Weight-m.Distance(0, 1)) > 1e-12 {
		t.Fatalf("n=2 MST wrong: %+v", got)
	}
	s2, _ := sessionFor(m, core.SchemeTri, nil)
	if got := KruskalMST(s2); len(got.Edges) != 1 {
		t.Fatalf("n=2 Kruskal wrong: %+v", got)
	}
}

// refKNN computes the k nearest neighbours by full sort.
func refKNN(m *metric.Matrix, k int) [][]Neighbor {
	n := m.Len()
	out := make([][]Neighbor, n)
	for u := 0; u < n; u++ {
		var ns []Neighbor
		for v := 0; v < n; v++ {
			if v != u {
				ns = append(ns, Neighbor{ID: v, Dist: m.Distance(u, v)})
			}
		}
		sortNeighbors(ns)
		out[u] = ns[:k]
	}
	return out
}

func knnEqual(a, b [][]Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for u := range a {
		if len(a[u]) != len(b[u]) {
			return false
		}
		// Compare as sets of ids (distances follow from ids).
		ai := make([]int, len(a[u]))
		bi := make([]int, len(b[u]))
		for x := range a[u] {
			ai[x], bi[x] = a[u][x].ID, b[u][x].ID
		}
		sort.Ints(ai)
		sort.Ints(bi)
		for x := range ai {
			if ai[x] != bi[x] {
				return false
			}
		}
	}
	return true
}

func TestKNNGraphMatchesReference(t *testing.T) {
	m := datasets.RandomMetric(30, 9)
	want := refKNN(m, 4)
	landmarks := core.PickLandmarks(30, 5, 10)
	for _, sc := range allGraphSchemes {
		s, _ := sessionFor(m, sc, landmarks)
		s.Bootstrap(landmarks)
		got := KNNGraph(s, 4)
		if !knnEqual(got, want) {
			t.Fatalf("scheme %v: kNN graph diverged", sc)
		}
	}
}

func TestKNNGraphSavesCalls(t *testing.T) {
	n := 60
	m := datasets.SFPOI(n, 11)
	noop, oN := sessionFor(m, core.SchemeNoop, nil)
	KNNGraph(noop, 5)
	landmarks := core.PickLandmarks(n, 6, 12)
	tri, oT := sessionFor(m, core.SchemeTri, landmarks)
	tri.Bootstrap(landmarks)
	KNNGraph(tri, 5)
	if oT.Calls() >= oN.Calls() {
		t.Fatalf("Tri kNN made %d calls, Noop %d", oT.Calls(), oN.Calls())
	}
}

func TestKNNGraphKClamped(t *testing.T) {
	m := datasets.RandomMetric(5, 13)
	s, _ := sessionFor(m, core.SchemeNoop, nil)
	g := KNNGraph(s, 10)
	for u := range g {
		if len(g[u]) != 4 {
			t.Fatalf("node %d has %d neighbours, want 4", u, len(g[u]))
		}
	}
}

func TestPAMIdenticalAcrossSchemes(t *testing.T) {
	m := datasets.RandomMetric(40, 14)
	base, _ := sessionFor(m, core.SchemeNoop, nil)
	want := PAM(base, 4, 99)
	landmarks := core.PickLandmarks(40, 5, 15)
	for _, sc := range allGraphSchemes[1:] {
		s, _ := sessionFor(m, sc, landmarks)
		s.Bootstrap(landmarks)
		got := PAM(s, 4, 99)
		if math.Abs(got.Cost-want.Cost) > 1e-9 {
			t.Fatalf("scheme %v: PAM cost %v vs %v", sc, got.Cost, want.Cost)
		}
		for i := range want.Medoids {
			if got.Medoids[i] != want.Medoids[i] {
				t.Fatalf("scheme %v: medoids %v vs %v", sc, got.Medoids, want.Medoids)
			}
		}
		for p := range want.Assign {
			if got.Assign[p] != want.Assign[p] {
				t.Fatalf("scheme %v: assignment diverged at %d", sc, p)
			}
		}
	}
}

func TestPAMImprovesCost(t *testing.T) {
	m := datasets.UrbanGB(50, 16)
	s, _ := sessionFor(m, core.SchemeTri, nil)
	res := PAM(s, 5, 1)
	// The medoid cost must beat random assignment cost by a wide margin on
	// clustered data; sanity: every point assigned to a real medoid.
	if len(res.Medoids) != 5 {
		t.Fatalf("medoid count %d", len(res.Medoids))
	}
	for p, mi := range res.Assign {
		if mi < 0 || mi >= 5 {
			t.Fatalf("point %d assigned to %d", p, mi)
		}
	}
	if res.Cost <= 0 || math.IsInf(res.Cost, 0) {
		t.Fatalf("degenerate cost %v", res.Cost)
	}
}

func TestPAMSavesCalls(t *testing.T) {
	m := datasets.UrbanGB(60, 17)
	noop, oN := sessionFor(m, core.SchemeNoop, nil)
	PAM(noop, 6, 5)
	tri, oT := sessionFor(m, core.SchemeTri, nil)
	PAM(tri, 6, 5)
	if oT.Calls() >= oN.Calls() {
		t.Fatalf("Tri PAM made %d calls, Noop %d", oT.Calls(), oN.Calls())
	}
}

func TestCLARANSIdenticalAcrossSchemes(t *testing.T) {
	m := datasets.RandomMetric(36, 18)
	cfg := CLARANSConfig{NumLocal: 2, MaxNeighbor: 60, Seed: 5}
	base, _ := sessionFor(m, core.SchemeNoop, nil)
	want := CLARANS(base, 4, cfg)
	for _, sc := range []core.Scheme{core.SchemeTri, core.SchemeSPLUB} {
		s, _ := sessionFor(m, sc, nil)
		got := CLARANS(s, 4, cfg)
		if math.Abs(got.Cost-want.Cost) > 1e-9 {
			t.Fatalf("scheme %v: CLARANS cost %v vs %v", sc, got.Cost, want.Cost)
		}
		for i := range want.Medoids {
			if got.Medoids[i] != want.Medoids[i] {
				t.Fatalf("scheme %v: medoids %v vs %v", sc, got.Medoids, want.Medoids)
			}
		}
	}
}

func TestCLARANSSavesCalls(t *testing.T) {
	m := datasets.UrbanGB(60, 19)
	cfg := CLARANSConfig{NumLocal: 2, MaxNeighbor: 80, Seed: 6}
	noop, oN := sessionFor(m, core.SchemeNoop, nil)
	CLARANS(noop, 6, cfg)
	tri, oT := sessionFor(m, core.SchemeTri, nil)
	CLARANS(tri, 6, cfg)
	if oT.Calls() >= oN.Calls() {
		t.Fatalf("Tri CLARANS made %d calls, Noop %d", oT.Calls(), oN.Calls())
	}
}

func TestClusteringDegenerateL(t *testing.T) {
	m := datasets.RandomMetric(8, 20)
	s, _ := sessionFor(m, core.SchemeTri, nil)
	res := PAM(s, 8, 1) // l == n: every point its own medoid
	if res.Cost != 0 {
		t.Fatalf("l=n cost %v, want 0", res.Cost)
	}
	s2, _ := sessionFor(m, core.SchemeTri, nil)
	res2 := PAM(s2, 1, 1)
	if len(res2.Medoids) != 1 {
		t.Fatalf("l=1 medoids %v", res2.Medoids)
	}
}

func TestPrimLazyMatchesPrim(t *testing.T) {
	m := datasets.RandomMetric(22, 21)
	want := refMST(m)
	for _, sc := range []core.Scheme{core.SchemeNoop, core.SchemeTri, core.SchemeSPLUB, core.SchemeADM} {
		s, _ := sessionFor(m, sc, nil)
		got := PrimMSTLazy(s)
		if math.Abs(got.Weight-want.Weight) > 1e-9 || !sameEdges(got.Edges, want.Edges) {
			t.Fatalf("scheme %v: lazy Prim weight %v vs reference %v", sc, got.Weight, want.Weight)
		}
	}
}

func TestPrimLazySavesCallsWithBounds(t *testing.T) {
	m := datasets.RandomMetric(30, 22)
	noop, oN := sessionFor(m, core.SchemeNoop, nil)
	PrimMSTLazy(noop)
	adm, oA := sessionFor(m, core.SchemeADM, nil)
	PrimMSTLazy(adm)
	if oA.Calls() >= oN.Calls() {
		t.Fatalf("ADM lazy Prim made %d calls, Noop %d", oA.Calls(), oN.Calls())
	}
}

// TestMSTWithMassiveTies drives all MST algorithms over degenerate metrics
// where most distances are equal — the adversarial case for the lazy
// Kruskal's pop-order reasoning and Prim's strict comparisons.
func TestMSTWithMassiveTies(t *testing.T) {
	n := 12
	build := func(d func(i, j int) float64) *metric.Matrix {
		mat := make([][]float64, n)
		for i := range mat {
			mat[i] = make([]float64, n)
			for j := range mat[i] {
				if i != j {
					mat[i][j] = d(i, j)
				}
			}
		}
		m, err := metric.NewMatrix(mat)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := map[string]*metric.Matrix{
		"uniform": build(func(i, j int) float64 { return 0.5 }),
		"two-valued": build(func(i, j int) float64 {
			if (i+j)%2 == 0 {
				return 0.6
			}
			return 0.4
		}),
	}
	for name, m := range cases {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: not a metric: %v", name, err)
		}
		wantWeight := refMST(m).Weight
		for _, sc := range []core.Scheme{core.SchemeNoop, core.SchemeTri, core.SchemeSPLUB} {
			for algoName, algo := range map[string]func(core.View) MST{
				"prim": PrimMST, "kruskal": KruskalMST, "boruvka": BoruvkaMST, "primlazy": PrimMSTLazy,
			} {
				s, _ := sessionFor(m, sc, nil)
				got := algo(s)
				if len(got.Edges) != n-1 {
					t.Fatalf("%s/%s/%v: %d edges", name, algoName, sc, len(got.Edges))
				}
				if math.Abs(got.Weight-wantWeight) > 1e-9 {
					t.Fatalf("%s/%s/%v: weight %v, want %v", name, algoName, sc, got.Weight, wantWeight)
				}
			}
		}
	}
}
