// Parallel builders. Every algorithm here shares its inner loops with its
// sequential counterpart through core.View, and all workers share one
// SharedSession, so every resolved distance tightens the bounds seen by
// every other worker and no pair is ever resolved twice (the session's
// single-flight guarantee). The oracle-call *count* may differ from the
// sequential run — which comparisons the bounds manage to prune depends on
// the resolution interleaving — but the outputs are identical.
package prox

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"metricprox/internal/core"
	"metricprox/internal/unionfind"
)

// normWorkers resolves the workers argument (0 or less means GOMAXPROCS).
func normWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// KNNGraphParallel builds the k-nearest-neighbour graph with the per-node
// searches fanned out over workers goroutines (0 means GOMAXPROCS). The
// neighbour sets are identical to KNNGraph's: both return the canonical k
// smallest (distance, id) pairs per node. k ≤ 0 yields empty lists, like
// KNNGraph.
func KNNGraphParallel(s *core.SharedSession, k, workers int) [][]Neighbor {
	n := s.N()
	if k >= n {
		k = n - 1
	}
	if k <= 0 {
		return emptyNeighborLists(n)
	}
	workers = normWorkers(workers)
	out := make([][]Neighbor, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range next {
				out[u] = knnForNode(s, u, k)
			}
		}()
	}
	for u := 0; u < n; u++ {
		next <- u
	}
	close(next)
	wg.Wait()
	return out
}

// BoruvkaMSTParallel computes the MST with Borůvka's algorithm, fanning
// the per-round cheapest-outgoing-edge scan out over workers goroutines
// (0 means GOMAXPROCS). Each worker scans a strided share of the vertices
// into a private candidate map; the partial maps are then merged with the
// same Session.Less tournament the scan uses, and the merge phase applies
// the winning edges exactly like the sequential algorithm.
//
// With distinct edge weights (the library's continuous datasets) each
// component's cheapest outgoing edge is unique, so the merged candidate
// set — and therefore the MST — is identical to sequential BoruvkaMST's
// regardless of how the tournament comparisons interleave.
func BoruvkaMSTParallel(s *core.SharedSession, workers int) MST {
	n := s.N()
	workers = normWorkers(workers)
	dsu := unionfind.New(n)
	var out MST
	for dsu.Sets() > 1 {
		roots := componentRoots(dsu, n)
		locals := make([]map[int]candEdge, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				local := make(map[int]candEdge)
				for u := w; u < n; u += workers {
					boruvkaScanFrom(s, roots, u, local)
				}
				locals[w] = local
			}(w)
		}
		wg.Wait()
		cheapest := make(map[int]candEdge)
		for _, local := range locals {
			for r, c := range local {
				if best, ok := cheapest[r]; !ok || s.Less(c.u, c.v, best.u, best.v) {
					cheapest[r] = c
				}
			}
		}
		if !boruvkaMerge(s, dsu, cheapest, &out) {
			break // defensively avoid looping on degenerate ties
		}
	}
	return out
}

// PAMParallel runs the PAM swap phase with the assignment phase fanned out
// over workers goroutines (0 means GOMAXPROCS). Each point's
// nearest/second-nearest medoid computation is independent, so the phase
// is embarrassingly parallel; the swap scan itself visits candidates in
// the same order as PAM. The medoid set, assignment, and cost are
// identical to PAM's for the same seed.
func PAMParallel(s *core.SharedSession, l int, seed int64, workers int) Clustering {
	n := s.N()
	if l > n {
		l = n
	}
	workers = normWorkers(workers)
	rng := rand.New(rand.NewSource(seed))
	medoids := append([]int(nil), rng.Perm(n)[:l]...)
	isMedoid := make([]bool, n)
	for _, m := range medoids {
		isMedoid[m] = true
	}

	const improveEps = 1e-12
	for {
		a := assignAllParallel(s, medoids, workers)
		bestDelta, bestMi, bestH := -improveEps, -1, -1
		for mi := range medoids {
			for h := 0; h < n; h++ {
				if isMedoid[h] {
					continue
				}
				if delta := swapDelta(s, medoids, mi, h, a); delta < bestDelta {
					bestDelta, bestMi, bestH = delta, mi, h
				}
			}
		}
		if bestMi == -1 {
			return Clustering{Medoids: medoids, Assign: a.near, Cost: a.totalCost()}
		}
		isMedoid[medoids[bestMi]] = false
		isMedoid[bestH] = true
		medoids[bestMi] = bestH
	}
}

// assignAllParallel computes the same nearest/second-nearest structure as
// assignAll with points fanned out over workers. Workers write disjoint
// indices, and each point's scan is the sequential one, so the result is
// identical to assignAll's for any worker count.
func assignAllParallel(s core.View, medoids []int, workers int) assignment {
	n := s.N()
	a := assignment{
		near: make([]int, n),
		d1:   make([]float64, n),
		d2:   make([]float64, n),
	}
	workers = normWorkers(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for p := w; p < n; p += workers {
				a.near[p], a.d1[p], a.d2[p] = assignPoint(s, medoids, p)
			}
		}(w)
	}
	wg.Wait()
	return a
}

// componentRoots snapshots every vertex's component representative so the
// scan phase can read roots without mutating the DSU (Find's path
// compression is not safe for concurrent use).
func componentRoots(dsu *unionfind.DSU, n int) []int {
	roots := make([]int, n)
	for u := range roots {
		roots[u] = dsu.Find(u)
	}
	return roots
}

// boruvkaMerge applies one round's winning candidate edges in ascending
// root order (deterministic float accumulation) and reports whether any
// union happened.
func boruvkaMerge(s core.View, dsu *unionfind.DSU, cheapest map[int]candEdge, out *MST) bool {
	order := make([]int, 0, len(cheapest))
	for r := range cheapest {
		order = append(order, r)
	}
	sort.Ints(order)
	progressed := false
	for _, r := range order {
		c := cheapest[r]
		if dsu.Union(c.u, c.v) {
			w := s.Dist(c.u, c.v)
			out.Edges = append(out.Edges, normEdge(c.u, c.v, w))
			out.Weight += w
			progressed = true
		}
	}
	return progressed
}
