package prox

import (
	"runtime"
	"sort"
	"sync"

	"metricprox/internal/core"
)

// KNNGraphParallel builds the k-nearest-neighbour graph with the per-node
// searches fanned out over workers goroutines (0 means GOMAXPROCS). All
// workers share one session view, so every resolved distance tightens the
// bounds seen by all of them.
//
// The neighbour sets are identical to KNNGraph's (both compute the exact
// k nearest per node); the oracle-call count may differ slightly because
// the resolution *order* — and therefore which comparisons the bounds
// manage to prune — depends on the interleaving.
func KNNGraphParallel(s *core.SharedSession, k, workers int) [][]Neighbor {
	n := s.N()
	if k >= n {
		k = n - 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]Neighbor, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range next {
				out[u] = knnForNode(s, u, k)
			}
		}()
	}
	for u := 0; u < n; u++ {
		next <- u
	}
	close(next)
	wg.Wait()
	return out
}

// knnForNode runs the candidate scan for one node over the shared session.
func knnForNode(s *core.SharedSession, u, k int) []Neighbor {
	n := s.N()
	type cand struct {
		id int
		lb float64
	}
	cands := make([]cand, 0, n-1)
	for v := 0; v < n; v++ {
		if v == u {
			continue
		}
		lb, _ := s.Bounds(u, v)
		cands = append(cands, cand{id: v, lb: lb})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].lb != cands[b].lb {
			return cands[a].lb < cands[b].lb
		}
		return cands[a].id < cands[b].id
	})
	best := make([]Neighbor, 0, k+1)
	kth := s.MaxDistance() * 2
	for _, c := range cands {
		if len(best) == k && c.lb >= kth {
			break
		}
		threshold := kth
		if len(best) < k {
			threshold = s.MaxDistance() * 2
		}
		d, less := s.DistIfLess(u, c.id, threshold)
		if !less {
			continue
		}
		best = append(best, Neighbor{ID: c.id, Dist: d})
		sortNeighbors(best)
		if len(best) > k {
			best = best[:k]
		}
		if len(best) == k {
			kth = best[k-1].Dist
		}
	}
	return best
}
