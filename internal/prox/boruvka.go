package prox

import (
	"metricprox/internal/core"
	"metricprox/internal/unionfind"
)

// candEdge is a candidate outgoing edge of a component during a Borůvka
// round.
type candEdge struct{ u, v int }

// boruvkaScanFrom scans vertex u's edges to all higher-numbered vertices,
// updating both endpoints' components' cheapest-outgoing-edge candidates
// via Session.Less tournaments. roots is the per-vertex component
// representative snapshot for the current round; it is read-only here,
// which is what lets the parallel builder share this loop across workers.
func boruvkaScanFrom(s core.View, roots []int, u int, cheapest map[int]candEdge) {
	n := len(roots)
	ru := roots[u]
	for v := u + 1; v < n; v++ {
		if roots[v] == ru {
			continue
		}
		if best, ok := cheapest[ru]; !ok || s.Less(u, v, best.u, best.v) {
			cheapest[ru] = candEdge{u: u, v: v}
		}
		rv := roots[v]
		if best, ok := cheapest[rv]; !ok || s.Less(u, v, best.u, best.v) {
			cheapest[rv] = candEdge{u: u, v: v}
		}
	}
}

// BoruvkaMST computes the MST with Borůvka's algorithm: every round, each
// component selects its cheapest outgoing edge and all selections are
// merged. The per-component selection is a tournament of edge-versus-edge
// comparisons — Session.Less — so, like the lazy Prim, only the edges that
// actually win a round need exact resolution.
//
// With distinct edge weights (the library's continuous datasets) Borůvka,
// Prim and Kruskal all return the identical unique MST; the package tests
// assert it, as well as identity with BoruvkaMSTParallel.
func BoruvkaMST(s core.View) MST {
	n := s.N()
	dsu := unionfind.New(n)
	var out MST
	for dsu.Sets() > 1 {
		roots := componentRoots(dsu, n)
		cheapest := make(map[int]candEdge)
		for u := 0; u < n; u++ {
			boruvkaScanFrom(s, roots, u, cheapest)
		}
		if !boruvkaMerge(s, dsu, cheapest, &out) {
			break // defensively avoid looping on degenerate ties
		}
	}
	return out
}
