package prox

import (
	"metricprox/internal/core"
	"metricprox/internal/unionfind"
)

// BoruvkaMST computes the MST with Borůvka's algorithm: every round, each
// component selects its cheapest outgoing edge and all selections are
// merged. The per-component selection is a tournament of edge-versus-edge
// comparisons — Session.Less — so, like the lazy Prim, only the edges that
// actually win a round need exact resolution.
//
// With distinct edge weights (the library's continuous datasets) Borůvka,
// Prim and Kruskal all return the identical unique MST; the package tests
// assert it.
func BoruvkaMST(s *core.Session) MST {
	n := s.N()
	dsu := unionfind.New(n)
	var out MST
	for dsu.Sets() > 1 {
		// cheapest[root] = best outgoing candidate edge of that component.
		type cand struct{ u, v int }
		cheapest := make(map[int]cand)
		for u := 0; u < n; u++ {
			ru := dsu.Find(u)
			for v := u + 1; v < n; v++ {
				if dsu.Find(v) == ru {
					continue
				}
				best, ok := cheapest[ru]
				if !ok || s.Less(u, v, best.u, best.v) {
					cheapest[ru] = cand{u: u, v: v}
				}
				rv := dsu.Find(v)
				bestV, okV := cheapest[rv]
				if !okV || s.Less(u, v, bestV.u, bestV.v) {
					cheapest[rv] = cand{u: u, v: v}
				}
			}
		}
		progressed := false
		for _, c := range cheapest {
			if dsu.Union(c.u, c.v) {
				w := s.Dist(c.u, c.v)
				out.Edges = append(out.Edges, normEdge(c.u, c.v, w))
				out.Weight += w
				progressed = true
			}
		}
		if !progressed {
			break // defensively avoid looping on degenerate ties
		}
	}
	return out
}
