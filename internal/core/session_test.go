package core

import (
	"math/rand"
	"testing"

	"metricprox/internal/bounds"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

func newTestSession(t *testing.T, n int, seed int64, scheme Scheme, landmarks []int) (*Session, *metric.Matrix, *metric.Oracle) {
	t.Helper()
	m := datasets.RandomMetric(n, seed)
	o := metric.NewOracle(m)
	s := NewSessionWithLandmarks(o, scheme, landmarks)
	return s, m, o
}

func TestDistMemoisation(t *testing.T) {
	s, m, o := newTestSession(t, 10, 1, SchemeTri, nil)
	d1 := s.Dist(2, 7)
	d2 := s.Dist(7, 2)
	if d1 != d2 || d1 != m.Distance(2, 7) {
		t.Fatalf("Dist = %v/%v, want %v", d1, d2, m.Distance(2, 7))
	}
	if o.Calls() != 1 {
		t.Fatalf("oracle calls = %d, want 1 (memoised)", o.Calls())
	}
	if s.Dist(3, 3) != 0 {
		t.Fatal("self distance not 0")
	}
	if o.Calls() != 1 {
		t.Fatal("self distance hit the oracle")
	}
}

func TestKnownAndBounds(t *testing.T) {
	s, m, _ := newTestSession(t, 10, 2, SchemeTri, nil)
	if _, ok := s.Known(1, 2); ok {
		t.Fatal("pair known before resolution")
	}
	d := s.Dist(1, 2)
	if w, ok := s.Known(2, 1); !ok || w != d {
		t.Fatal("pair not known after resolution")
	}
	lb, ub := s.Bounds(1, 2)
	if lb != d || ub != d {
		t.Fatalf("resolved pair bounds [%v,%v], want exact %v", lb, ub, d)
	}
	lb, ub = s.Bounds(3, 3)
	if lb != 0 || ub != 0 {
		t.Fatal("self bounds not (0,0)")
	}
	_ = m
}

// exerciseComparisons runs a deterministic batch of Less/LessThan/
// DistIfLess calls and verifies every answer against ground truth.
func exerciseComparisons(t *testing.T, s *Session, m *metric.Matrix, seed int64, rounds int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := m.Len()
	for r := 0; r < rounds; r++ {
		i, j := rng.Intn(n), rng.Intn(n)
		k, l := rng.Intn(n), rng.Intn(n)
		if i == j || k == l || (i == k && j == l) {
			continue
		}
		want := m.Distance(i, j) < m.Distance(k, l)
		if got := s.Less(i, j, k, l); got != want {
			t.Fatalf("%s: Less(%d,%d,%d,%d) = %v, want %v", s.Bounder().Name(), i, j, k, l, got, want)
		}
		c := rng.Float64()
		if got, want := s.LessThan(i, j, c), m.Distance(i, j) < c; got != want {
			t.Fatalf("%s: LessThan(%d,%d,%v) = %v, want %v", s.Bounder().Name(), i, j, c, got, want)
		}
		d, less := s.DistIfLess(k, l, c)
		wantLess := m.Distance(k, l) < c
		if less != wantLess {
			t.Fatalf("%s: DistIfLess(%d,%d,%v) less = %v, want %v", s.Bounder().Name(), k, l, c, less, wantLess)
		}
		if less && d != m.Distance(k, l) {
			t.Fatalf("%s: DistIfLess returned %v, want %v", s.Bounder().Name(), d, m.Distance(k, l))
		}
	}
}

func TestComparisonsExactAllSchemes(t *testing.T) {
	// The framework's central guarantee: every scheme answers every
	// comparison exactly as ground truth.
	schemes := []Scheme{SchemeNoop, SchemeSPLUB, SchemeTri, SchemeADM, SchemeLAESA, SchemeTLAESA, SchemeHybrid}
	for _, sc := range schemes {
		sc := sc
		t.Run(sc.String(), func(t *testing.T) {
			for trial := int64(0); trial < 3; trial++ {
				n := 14
				landmarks := PickLandmarks(n, 4, trial)
				s, m, _ := newTestSession(t, n, 40+trial, sc, landmarks)
				s.Bootstrap(landmarks)
				exerciseComparisons(t, s, m, 70+trial, 300)
			}
		})
	}
}

func TestComparisonsExactDFT(t *testing.T) {
	// DFT is LP-heavy; use a small universe.
	s, m, _ := newTestSession(t, 7, 5, SchemeDFT, nil)
	exerciseComparisons(t, s, m, 6, 60)
	if s.Stats().SavedComparisons == 0 {
		t.Fatal("DFT never saved a comparison")
	}
}

func TestTriSavesCallsVersusNoop(t *testing.T) {
	run := func(scheme Scheme) int64 {
		m := datasets.RandomMetric(40, 77)
		o := metric.NewOracle(m)
		s := NewSession(o, scheme)
		rng := rand.New(rand.NewSource(78))
		for r := 0; r < 1500; r++ {
			i, j, k, l := rng.Intn(40), rng.Intn(40), rng.Intn(40), rng.Intn(40)
			if i == j || k == l {
				continue
			}
			s.Less(i, j, k, l)
		}
		return o.Calls()
	}
	noop, tri, splub := run(SchemeNoop), run(SchemeTri), run(SchemeSPLUB)
	if tri >= noop {
		t.Fatalf("Tri made %d calls, Noop %d — no savings", tri, noop)
	}
	if splub > tri {
		t.Fatalf("SPLUB (%d calls) should save at least as much as Tri (%d)", splub, tri)
	}
}

func TestStatsAccounting(t *testing.T) {
	s, _, o := newTestSession(t, 12, 9, SchemeSPLUB, nil)
	rng := rand.New(rand.NewSource(10))
	for r := 0; r < 200; r++ {
		i, j, k, l := rng.Intn(12), rng.Intn(12), rng.Intn(12), rng.Intn(12)
		if i == j || k == l {
			continue
		}
		s.Less(i, j, k, l)
	}
	st := s.Stats()
	if st.OracleCalls != o.Calls() {
		t.Fatalf("session counted %d calls, oracle %d", st.OracleCalls, o.Calls())
	}
	if st.SavedComparisons == 0 {
		t.Fatal("no comparisons saved by SPLUB on a dense workload")
	}
	if st.BoundProbes == 0 {
		t.Fatal("no bound probes recorded")
	}
}

func TestBootstrapCallCount(t *testing.T) {
	n, k := 64, 6
	landmarks := PickLandmarks(n, k, 3)
	s, _, o := newTestSession(t, n, 11, SchemeLAESA, landmarks)
	spent := s.Bootstrap(landmarks)
	want := int64(k*n - k - k*(k-1)/2)
	if spent != want || o.Calls() != want {
		t.Fatalf("bootstrap spent %d calls (oracle %d), want %d", spent, o.Calls(), want)
	}
	if s.Stats().BootstrapCalls != want {
		t.Fatalf("BootstrapCalls = %d, want %d", s.Stats().BootstrapCalls, want)
	}
	// Re-bootstrap costs nothing (all pairs memoised).
	if again := s.Bootstrap(landmarks); again != 0 {
		t.Fatalf("second bootstrap spent %d calls, want 0", again)
	}
}

func TestGreedyLandmarks(t *testing.T) {
	s, _, _ := newTestSession(t, 30, 13, SchemeTri, nil)
	lms := s.GreedyLandmarks(5)
	if len(lms) != 5 {
		t.Fatalf("got %d landmarks, want 5", len(lms))
	}
	seen := map[int]bool{}
	for _, l := range lms {
		if seen[l] {
			t.Fatalf("duplicate landmark %d", l)
		}
		seen[l] = true
	}
	// Every landmark row must be fully resolved.
	for _, l := range lms {
		for x := 0; x < 30; x++ {
			if x == l {
				continue
			}
			if _, ok := s.Known(l, x); !ok {
				t.Fatalf("landmark %d row missing object %d", l, x)
			}
		}
	}
}

// TestGreedyLandmarksPinned pins the exact landmark set (and call count)
// the greedy max-min rule returns for fixed seeds. The sets were captured
// from the pre-bitmap O(n·k²) implementation, so this is the proof that
// the O(n·k) selected-bitmap rewrite is behaviour-preserving.
func TestGreedyLandmarksPinned(t *testing.T) {
	cases := []struct {
		n, k  int
		seed  int64
		want  []int
		calls int64
	}{
		{40, 6, 77, []int{0, 31, 26, 20, 39, 25}, 219},
		{64, 8, 77, []int{0, 31, 26, 40, 20, 44, 11, 62}, 476},
		{30, 30, 5, []int{0, 20, 11, 14, 19, 3, 15, 13, 2, 9, 27, 12, 26, 5, 8, 1, 22, 16, 21, 18, 28, 23, 17, 6, 4, 29, 25, 24, 7, 10}, 435},
	}
	for _, tc := range cases {
		m := datasets.RandomMetric(tc.n, tc.seed)
		s := NewSession(metric.NewOracle(m), SchemeNoop)
		got := s.GreedyLandmarks(tc.k)
		if len(got) != len(tc.want) {
			t.Fatalf("n=%d k=%d: got %d landmarks, want %d", tc.n, tc.k, len(got), len(tc.want))
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("n=%d k=%d: landmarks %v, want %v", tc.n, tc.k, got, tc.want)
			}
		}
		if c := s.Stats().OracleCalls; c != tc.calls {
			t.Fatalf("n=%d k=%d: %d oracle calls, want %d", tc.n, tc.k, c, tc.calls)
		}
	}
}

func TestPickLandmarksDeterministic(t *testing.T) {
	a := PickLandmarks(100, 7, 42)
	b := PickLandmarks(100, 7, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PickLandmarks not deterministic")
		}
	}
	if len(PickLandmarks(5, 10, 1)) != 5 {
		t.Fatal("k > n not clamped")
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		SchemeNoop: "noop", SchemeSPLUB: "splub", SchemeTri: "tri",
		SchemeADM: "adm", SchemeLAESA: "laesa", SchemeTLAESA: "tlaesa",
		SchemeDFT: "dft", SchemeHybrid: "hybrid",
	}
	for sc, want := range names {
		if sc.String() != want {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(sc), sc.String(), want)
		}
	}
}

func TestMaxDistanceOption(t *testing.T) {
	m := datasets.RandomMetric(8, 21)
	o := metric.NewOracle(m)
	s := NewSession(o, SchemeTri, WithMaxDistance(0.75))
	if s.MaxDistance() != 0.75 {
		t.Fatalf("MaxDistance = %v", s.MaxDistance())
	}
	_, ub := s.Bounds(0, 1)
	if ub != 0.75 {
		t.Fatalf("initial ub = %v, want 0.75", ub)
	}
}

func TestSharedSessionInPackage(t *testing.T) {
	m := datasets.RandomMetric(15, 22)
	o := metric.NewOracle(m)
	s := Share(NewSession(o, SchemeTri))
	if s.N() != 15 || s.MaxDistance() != 1 {
		t.Fatalf("N/MaxDistance = %d/%v", s.N(), s.MaxDistance())
	}
	d := s.Dist(0, 1)
	if w, ok := s.Known(1, 0); !ok || w != d {
		t.Fatal("Known through shared view broken")
	}
	if lb, ub := s.Bounds(0, 1); lb != d || ub != d {
		t.Fatalf("Bounds = [%v,%v]", lb, ub)
	}
	want := m.Distance(0, 2) < m.Distance(3, 4)
	if got := s.Less(0, 2, 3, 4); got != want {
		t.Fatalf("Less = %v, want %v", got, want)
	}
	if got, want := s.LessThan(5, 6, 0.5), m.Distance(5, 6) < 0.5; got != want {
		t.Fatalf("LessThan = %v, want %v", got, want)
	}
	dd, less := s.DistIfLess(7, 8, 2)
	if !less || dd != m.Distance(7, 8) {
		t.Fatalf("DistIfLess = %v,%v", dd, less)
	}
}

func TestSessionAccessorsAndComparatorOption(t *testing.T) {
	m := datasets.RandomMetric(6, 23)
	o := metric.NewOracle(m)
	// Install DFT explicitly as a comparator over a Tri session.
	dft := bounds.NewDFT(6, 1)
	s := NewSession(o, SchemeTri, WithComparator(dft))
	if s.Graph() == nil || s.Bounder() == nil {
		t.Fatal("accessors returned nil")
	}
	if s.Bounder().Name() != "tri" {
		t.Fatalf("Bounder = %q", s.Bounder().Name())
	}
	exerciseComparisons(t, s, m, 24, 40)
}
