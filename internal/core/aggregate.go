package core

import "metricprox/internal/fcmp"

// Pair identifies one distance term of an aggregate comparison.
type Pair struct{ A, B int }

// SumLessThan reports whether Σ dist(p.A, p.B) over pairs is strictly less
// than c — the "distance aggregates" form of the paper's Contribution 1
// (IF statements that compare sums of distances, as in 2-opt moves,
// clustering cost deltas, or tour comparisons).
//
// Interval bounds compose additively: if the upper bounds already sum
// below c the answer is certainly true; if the lower bounds reach c it is
// certainly false. Only when the aggregate interval straddles c are the
// unresolved terms resolved — largest bound-gap first, re-checking after
// each resolution, so the oracle is consulted as few times as possible.
func (s *Session) SumLessThan(pairs []Pair, c float64) bool {
	lbSum, ubSum := 0.0, 0.0
	type term struct {
		p      Pair
		lb, ub float64
	}
	var open []term
	for _, p := range pairs {
		lb, ub := s.Bounds(p.A, p.B)
		lbSum += lb
		ubSum += ub
		if !fcmp.ExactEq(lb, ub) {
			open = append(open, term{p: p, lb: lb, ub: ub})
		}
	}
	for {
		if ubSum < c {
			s.noteSaved()
			return true
		}
		if lbSum >= c {
			s.noteSaved()
			return false
		}
		if len(open) == 0 {
			// Fully resolved and still straddling: impossible (lb==ub for
			// every term means lbSum == ubSum), but guard for float edge
			// cases where lbSum < c ≤ ubSum within rounding.
			return lbSum < c
		}
		// Resolve the loosest term: it moves the aggregate interval most.
		widest, gap := 0, -1.0
		for i, t := range open {
			if g := t.ub - t.lb; g > gap {
				widest, gap = i, g
			}
		}
		t := open[widest]
		open[widest] = open[len(open)-1]
		open = open[:len(open)-1]
		s.ins.ResolvedComparisons.Inc()
		d := s.Dist(t.p.A, t.p.B)
		lbSum += d - t.lb
		ubSum += d - t.ub
	}
}

// SumLess reports whether Σ dist over left is strictly less than Σ dist
// over right, with the same bound-first, loosest-term-next resolution
// strategy applied to both sides jointly.
func (s *Session) SumLess(left, right []Pair) bool {
	type term struct {
		p      Pair
		lb, ub float64
		sign   float64 // +1 for left, −1 for right
	}
	// Track bounds of Σleft − Σright.
	lo, hi := 0.0, 0.0
	var open []term
	add := func(ps []Pair, sign float64) {
		for _, p := range ps {
			lb, ub := s.Bounds(p.A, p.B)
			if sign > 0 {
				lo += lb
				hi += ub
			} else {
				lo -= ub
				hi -= lb
			}
			if !fcmp.ExactEq(lb, ub) {
				open = append(open, term{p: p, lb: lb, ub: ub, sign: sign})
			}
		}
	}
	add(left, 1)
	add(right, -1)
	for {
		if hi < 0 {
			s.noteSaved()
			return true
		}
		if lo >= 0 {
			s.noteSaved()
			return false
		}
		if len(open) == 0 {
			return lo < 0
		}
		widest, gap := 0, -1.0
		for i, t := range open {
			if g := t.ub - t.lb; g > gap {
				widest, gap = i, g
			}
		}
		t := open[widest]
		open[widest] = open[len(open)-1]
		open = open[:len(open)-1]
		s.ins.ResolvedComparisons.Inc()
		d := s.Dist(t.p.A, t.p.B)
		if t.sign > 0 {
			lo += d - t.lb
			hi += d - t.ub
		} else {
			lo -= d - t.ub
			hi -= d - t.lb
		}
	}
}
