package core_test

import (
	"fmt"

	"metricprox/internal/core"
	"metricprox/internal/metric"
)

// A five-city toy universe with hand-picked pairwise "driving times",
// symmetric and triangle-consistent, normalised into [0,1].
func exampleOracle() *metric.Oracle {
	d := [][]float64{
		{0.0, 0.2, 0.5, 0.6, 0.9},
		{0.2, 0.0, 0.4, 0.5, 0.8},
		{0.5, 0.4, 0.0, 0.2, 0.5},
		{0.6, 0.5, 0.2, 0.0, 0.4},
		{0.9, 0.8, 0.5, 0.4, 0.0},
	}
	m, err := metric.NewMatrix(d)
	if err != nil {
		panic(err)
	}
	return metric.NewOracle(m)
}

// ExampleSession_Less shows the paper's core move: a distance comparison
// answered from triangle bounds with no oracle calls for the compared
// pair.
func ExampleSession_Less() {
	oracle := exampleOracle()
	s := core.NewSession(oracle, core.SchemeTri)

	// Resolve a few distances; the session feeds them into the bounds.
	s.Dist(0, 1) // 0.2
	s.Dist(1, 4) // 0.8
	s.Dist(0, 4) // 0.9
	s.Dist(1, 2) // 0.4
	s.Dist(2, 4) // 0.5
	before := oracle.Calls()

	// Is dist(0,2) < dist(0,4)? Bounds: d(0,2) ≤ d(0,1)+d(1,2) = 0.6 and
	// d(0,4) is known to be 0.9 — decided without resolving d(0,2).
	fmt.Println("less:", s.Less(0, 2, 0, 4))
	fmt.Println("extra oracle calls:", oracle.Calls()-before)
	// Output:
	// less: true
	// extra oracle calls: 0
}

// ExampleSession_Bounds shows interval queries over unresolved pairs.
func ExampleSession_Bounds() {
	s := core.NewSession(exampleOracle(), core.SchemeTri)
	s.Dist(0, 1)
	s.Dist(1, 3)
	lb, ub := s.Bounds(0, 3) // via the triangle through object 1
	fmt.Printf("d(0,3) ∈ [%.1f, %.1f]\n", lb, ub)
	// Output:
	// d(0,3) ∈ [0.3, 0.7]
}

// ExampleSession_SumLessThan shows an aggregate comparison: the sum of two
// unresolved distances tested against a budget.
func ExampleSession_SumLessThan() {
	s := core.NewSession(exampleOracle(), core.SchemeTri)
	s.Dist(0, 1)
	s.Dist(1, 2)
	s.Dist(2, 3)
	ok := s.SumLessThan([]core.Pair{{A: 0, B: 2}, {A: 2, B: 4}}, 1.5)
	fmt.Println("within budget:", ok)
	// Output:
	// within budget: true
}
