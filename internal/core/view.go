package core

// View is the comparison interface proximity algorithms are written
// against: everything a re-authored IF statement needs, with no
// constructor or bootstrap surface. Both Session (single-goroutine) and
// SharedSession (concurrent) implement it, so an algorithm written once
// against View runs unchanged in either setting — the sequential and
// parallel builders in internal/prox share their inner loops this way.
type View interface {
	// N returns the number of objects in the universe.
	N() int
	// MaxDistance returns the a-priori cap on any distance.
	MaxDistance() float64
	// Known reports an already-resolved pair without any oracle call.
	Known(i, j int) (float64, bool)
	// Bounds returns the current lower/upper bounds without an oracle call.
	Bounds(i, j int) (lb, ub float64)
	// Dist resolves the exact distance (memoised).
	Dist(i, j int) float64
	// Less reports whether dist(i,j) < dist(k,l).
	Less(i, j, k, l int) bool
	// LessThan reports whether dist(i,j) < c.
	LessThan(i, j int, c float64) bool
	// DistIfLess resolves dist(i,j) only when the bounds cannot prove
	// dist(i,j) ≥ c; see Session.DistIfLess for the exact contract.
	DistIfLess(i, j int, c float64) (float64, bool)
	// Stats snapshots the session statistics.
	Stats() Stats
}

// FallibleView extends View with the error-propagating comparison
// surface for algorithms that run over remote or otherwise fallible
// oracles and need to distinguish exact answers from degraded ones. The
// View methods remain available and degrade to best-effort estimates
// (latching OracleErr) instead of failing.
type FallibleView interface {
	View
	// DistErr resolves the exact distance or reports why it could not.
	DistErr(i, j int) (float64, error)
	// LessErr is Less with error propagation.
	LessErr(i, j, k, l int) (bool, error)
	// LessOutcome is Less plus a per-call Outcome (never fails).
	LessOutcome(i, j, k, l int) (bool, Outcome)
	// LessThanErr is LessThan with error propagation.
	LessThanErr(i, j int, c float64) (bool, error)
	// DistIfLessErr is DistIfLess with error propagation.
	DistIfLessErr(i, j int, c float64) (float64, bool, error)
	// OracleErr returns the first resolution failure latched by the
	// session, nil while every answer so far is exact.
	OracleErr() error
}

// BoundsPrefetcher is an optional View extension for implementations
// where a bound lookup has real latency — the remote session in
// internal/proxclient, where every primitive is an HTTP round-trip.
// PrefetchBounds announces the pairs an algorithm is about to compare so
// the implementation can fetch their bounds in one batch; it is purely a
// performance hint and must not change any answer. In-process sessions
// answer Bounds from memory and deliberately do not implement it; the
// prox builders probe for it with a type assertion and skip the hint when
// absent.
type BoundsPrefetcher interface {
	// PrefetchBounds warms the implementation's bound state for pairs.
	PrefetchBounds(pairs []Pair)
}

// BatchBoundsView is an optional View extension for implementations that
// answer many bound queries in one pass — Session and SharedSession
// (single lock acquisition, one sweep over the bound scheme's state via
// bounds.BatchBounder) implement it, and the service's /batch handler
// probes for it to serve runs of bounds ops without per-pair dispatch.
// The answers are exactly what per-pair Bounds calls would return.
type BatchBoundsView interface {
	// BoundsBatch answers pair (is[x], js[x]) into lb[x], ub[x]; all four
	// slices must share a length.
	BoundsBatch(is, js []int, lb, ub []float64)
}

var (
	_ View            = (*Session)(nil)
	_ View            = (*SharedSession)(nil)
	_ FallibleView    = (*Session)(nil)
	_ FallibleView    = (*SharedSession)(nil)
	_ BatchBoundsView = (*Session)(nil)
	_ BatchBoundsView = (*SharedSession)(nil)
)
