package core

import (
	"path/filepath"
	"testing"

	"metricprox/internal/cachestore"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

func TestAttachStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dist.cache")
	m := datasets.RandomMetric(20, 31)

	// First run: resolve some pairs, persisting them.
	store, err := cachestore.Create(path, 20)
	if err != nil {
		t.Fatal(err)
	}
	o1 := metric.NewOracle(m)
	s1 := NewSession(o1, SchemeTri)
	if err := s1.AttachStore(store); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s1.Dist(i, i+5)
	}
	if s1.StoreErr() != nil {
		t.Fatal(s1.StoreErr())
	}
	firstCalls := o1.Calls()
	store.Close()

	// Second run over the same universe: the replayed cache answers
	// everything the first run resolved.
	store2, err := cachestore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	o2 := metric.NewOracle(m)
	s2 := NewSession(o2, SchemeTri)
	if err := s2.AttachStore(store2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got, want := s2.Dist(i, i+5), m.Distance(i, i+5); got != want {
			t.Fatalf("replayed Dist(%d,%d) = %v, want %v", i, i+5, got, want)
		}
	}
	if o2.Calls() != 0 {
		t.Fatalf("second run made %d oracle calls, want 0 (all cached)", o2.Calls())
	}
	// A genuinely new pair still costs a call and is persisted.
	s2.Dist(0, 19)
	if o2.Calls() != 1 {
		t.Fatalf("new pair cost %d calls, want 1", o2.Calls())
	}
	n, _ := store2.Len()
	if n != int(firstCalls)+1 {
		t.Fatalf("store holds %d records, want %d", n, firstCalls+1)
	}
}

func TestAttachStoreUniverseMismatch(t *testing.T) {
	store, err := cachestore.Create(filepath.Join(t.TempDir(), "x.cache"), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	m := datasets.RandomMetric(8, 32)
	s := NewSession(metric.NewOracle(m), SchemeTri)
	if err := s.AttachStore(store); err == nil {
		t.Fatal("universe mismatch accepted")
	}
}

func TestAttachStoreFeedsBounds(t *testing.T) {
	// Replayed edges must tighten bounds exactly like live resolutions.
	path := filepath.Join(t.TempDir(), "b.cache")
	m := datasets.RandomMetric(10, 33)
	store, _ := cachestore.Create(path, 10)
	o1 := metric.NewOracle(m)
	s1 := NewSession(o1, SchemeTri)
	s1.AttachStore(store)
	s1.Dist(0, 1)
	s1.Dist(1, 2)
	store.Close()

	store2, _ := cachestore.Open(path)
	defer store2.Close()
	s2 := NewSession(metric.NewOracle(m), SchemeTri)
	s2.AttachStore(store2)
	lb, ub := s2.Bounds(0, 2)
	if lb == 0 && ub == 1 {
		t.Fatal("replayed edges did not tighten bounds")
	}
}

func TestStoreSyncAndLenPaths(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.cache")
	store, err := cachestore.Create(path, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(0, 1, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}
	if n, err := store.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}
