package core

import (
	"fmt"

	"metricprox/internal/cachestore"
)

// AttachStore binds a persistent distance cache to the session: every
// record already in the store is replayed into the partial graph (and the
// bound scheme) without touching the oracle, and every future resolution
// is appended to the store. Re-running an algorithm over the same object
// universe therefore only pays for distances no previous run resolved —
// the natural complement to an oracle that bills per call.
//
// The store's universe size must match the session's. Attach before
// running algorithms; attaching twice or after resolutions is allowed (the
// partial graph deduplicates), but replayed distances must agree with any
// already-resolved pair or the graph panics on the conflict, surfacing
// oracle non-determinism instead of silently corrupting bounds.
func (s *Session) AttachStore(store *cachestore.Store) error {
	if store.N() != s.N() {
		return fmt.Errorf("core: store universe %d does not match session universe %d", store.N(), s.N())
	}
	err := store.Replay(func(r cachestore.Record) bool {
		if !s.g.Known(r.I, r.J) {
			s.record(r.I, r.J, r.Dist)
		}
		return true
	})
	if err != nil {
		return err
	}
	s.store = store
	return nil
}

// persistResolution appends a fresh oracle resolution to the attached
// store, if any. Append errors are surfaced three ways, because the hot
// path cannot return them: every failure bumps Stats.StoreErrors, the
// first failure is latched in StoreErr, and that first failure is logged
// once (WithLogf redirects the log) so a silently filling disk is noticed
// without flooding the log at oracle-call rate.
func (s *Session) persistResolution(i, j int, d float64) {
	if s.store == nil {
		return
	}
	if err := s.store.Append(i, j, d); err != nil {
		s.ins.StoreErrors.Inc()
		if s.storeErr == nil {
			s.storeErr = err
			s.logf("core: cache store append failed; resolutions stay in memory but the on-disk cache is now incomplete: %v", err)
		}
	}
}

// StoreErr returns the first error encountered while appending to the
// attached store (nil if none). A failed append never loses the in-memory
// resolution; it only means the cache on disk is incomplete.
func (s *Session) StoreErr() error { return s.storeErr }
