package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"metricprox/internal/datasets"
	"metricprox/internal/faultmetric"
	"metricprox/internal/metric"
	"metricprox/internal/obs"
)

// violatingSpace breaks the triangle inequality on one designated pair by
// inflating its distance.
type violatingSpace struct {
	metric.Space
	i, j int
	d    float64
}

func (v violatingSpace) Distance(i, j int) float64 {
	if (i == v.i && j == v.j) || (i == v.j && j == v.i) {
		return v.d
	}
	return v.Space.Distance(i, j)
}

// tightSpace returns a space whose honest distances are all ≤ 0.01·n, so
// a planted inflated pair is guaranteed to violate every triangle it
// closes.
func tightSpace(n int) metric.Space {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{float64(i) * 0.01}
	}
	return metric.NewVectors(pts, 2, 1)
}

func TestSlackRelaxesDerivedBounds(t *testing.T) {
	m := datasets.RandomMetric(16, 5)
	o := metric.NewOracle(m)
	eps := 0.1
	plain := NewSession(metric.NewOracle(m), SchemeTri)
	slacked := NewSession(o, SchemeTri, WithSlack(SlackPolicy{Additive: eps}))
	// Resolve the same edges in both sessions.
	for i := 1; i < 8; i++ {
		plain.Dist(0, i)
		slacked.Dist(0, i)
	}
	for i := 1; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			plb, pub := plain.Bounds(i, j)
			slb, sub := slacked.Bounds(i, j)
			wantLB := math.Max(0, plb-eps)
			wantUB := math.Min(slacked.MaxDistance(), pub+eps)
			if slb != wantLB || sub != wantUB {
				t.Fatalf("Bounds(%d,%d) = [%v,%v], want relaxed [%v,%v] of [%v,%v]",
					i, j, slb, sub, wantLB, wantUB, plb, pub)
			}
		}
	}
	// Resolved pairs stay exact: oracle values are not derived.
	lb, ub := slacked.Bounds(0, 3)
	if lb != ub || lb != m.Distance(0, 3) {
		t.Fatalf("resolved pair relaxed: [%v,%v] want exact %v", lb, ub, m.Distance(0, 3))
	}
	if lb, ub := slacked.Bounds(4, 4); lb != 0 || ub != 0 {
		t.Fatalf("self pair relaxed: [%v,%v]", lb, ub)
	}
}

func TestSlackBoundsBatchMatchesSingle(t *testing.T) {
	m := datasets.RandomMetric(20, 9)
	s := NewSession(metric.NewOracle(m), SchemeTri, WithSlack(SlackPolicy{Additive: 0.07}))
	for i := 1; i < 10; i++ {
		s.Dist(0, i)
	}
	var is, js []int
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			is = append(is, i)
			js = append(js, j)
		}
	}
	lb := make([]float64, len(is))
	ub := make([]float64, len(is))
	s.BoundsBatch(is, js, lb, ub)
	for q := range is {
		wlb, wub := s.Bounds(is[q], js[q])
		if lb[q] != wlb || ub[q] != wub {
			t.Fatalf("batch Bounds(%d,%d) = [%v,%v], single = [%v,%v]",
				is[q], js[q], lb[q], ub[q], wlb, wub)
		}
	}
}

func TestSlackSchemeGate(t *testing.T) {
	m := datasets.RandomMetric(10, 3)
	allowed := []Scheme{SchemeNoop, SchemeTri, SchemeLAESA, SchemeTLAESA}
	for _, sc := range allowed {
		NewSessionWithLandmarks(metric.NewOracle(m), sc, []int{0, 1},
			WithSlack(SlackPolicy{Additive: 0.1}))
	}
	blocked := []Scheme{SchemeSPLUB, SchemeADM, SchemeDFT, SchemeHybrid}
	for _, sc := range blocked {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scheme %v accepted additive slack", sc)
				}
			}()
			NewSession(metric.NewOracle(m), sc, WithSlack(SlackPolicy{Additive: 0.1}))
		}()
	}
	// Ratio slack rides the relaxation gate: Tri fine, LAESA rejected.
	NewSession(metric.NewOracle(m), SchemeTri, WithSlack(SlackPolicy{Ratio: 1.5}))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("LAESA accepted ratio slack")
			}
		}()
		NewSessionWithLandmarks(metric.NewOracle(m), SchemeLAESA, []int{0, 1},
			WithSlack(SlackPolicy{Ratio: 1.5}))
	}()
}

func TestWithSlackValidation(t *testing.T) {
	for name, p := range map[string]SlackPolicy{
		"negative-eps": {Additive: -0.1},
		"nan-eps":      {Additive: math.NaN()},
		"inf-eps":      {Additive: math.Inf(1)},
		"sub-1-ratio":  {Ratio: 0.5},
		"inf-ratio":    {Ratio: math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: WithSlack accepted %+v", name, p)
				}
			}()
			WithSlack(p)
		}()
	}
}

func TestSlackOutcomeAndStats(t *testing.T) {
	m := datasets.RandomMetric(16, 7)
	s := NewSession(metric.NewOracle(m), SchemeTri, WithSlack(SlackPolicy{Additive: 0.05}))
	for i := 1; i < 16; i++ {
		s.Dist(0, i)
	}
	sawSlack := false
	for i := 1; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			for _, c := range []float64{0.05, 0.5, 1.0} {
				if _, out, _ := s.decideLessThan(i, j, c); out == OutcomeSlack {
					sawSlack = true
				} else if out == OutcomeBounds {
					t.Fatalf("bounds-settled outcome under active slack should be OutcomeSlack")
				}
			}
		}
	}
	if !sawSlack {
		t.Fatal("no comparison settled under slack; test exercises nothing")
	}
	st := s.Stats()
	if st.SlackResolved == 0 {
		t.Fatal("Stats.SlackResolved not counted")
	}
	if st.SlackResolved > st.SavedComparisons {
		t.Fatalf("SlackResolved %d exceeds SavedComparisons %d", st.SlackResolved, st.SavedComparisons)
	}
	if OutcomeSlack.String() != "slack" {
		t.Fatalf("OutcomeSlack.String() = %q", OutcomeSlack)
	}
}

func TestStrictModeDetectsViolation(t *testing.T) {
	evil := violatingSpace{Space: tightSpace(12), i: 2, j: 5, d: 0.9}
	aud := metric.NewAuditor(0)
	s := NewSession(metric.NewOracle(evil), SchemeTri, WithAuditor(aud))
	// Resolve a hub so the violating edge closes triangles when it lands.
	for i := 1; i < 12; i++ {
		s.Dist(0, i)
	}
	s.Dist(2, 5) // closes triangle (2,0,5): 0.9 > d(2,0)+d(0,5) ≈ 0.07
	err := s.ViolationErr()
	if err == nil {
		t.Fatal("strict mode did not surface the planted violation")
	}
	if !errors.Is(err, metric.ErrNonMetric) {
		t.Fatalf("ViolationErr %v does not wrap metric.ErrNonMetric", err)
	}
	var ve *metric.ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("ViolationErr %T is not *metric.ViolationError", err)
	}
	if st := s.Stats(); st.Violations == 0 {
		t.Fatal("Stats.Violations not mirrored from the auditor")
	}
	if s.Auditor() != aud {
		t.Fatal("Auditor() accessor lost the attached auditor")
	}
}

func TestAutoSlackGrowsWithObservedMargin(t *testing.T) {
	evil := violatingSpace{Space: tightSpace(12), i: 3, j: 7, d: 0.95}
	reg := obs.NewRegistry()
	s := NewSession(metric.NewOracle(evil), SchemeTri,
		WithSlack(SlackPolicy{Auto: true}),
		WithObserver(&obs.Observer{Registry: reg}))
	if s.Auditor() == nil {
		t.Fatal("Auto slack did not attach an auditor")
	}
	if got := s.SlackEps(); got != 0 {
		t.Fatalf("initial SlackEps = %v, want 0", got)
	}
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			s.Dist(i, j)
		}
	}
	margin := s.Auditor().Margin()
	if margin <= 0 {
		t.Fatal("planted violation not observed by the auditor")
	}
	if got := s.SlackEps(); got != margin {
		t.Fatalf("SlackEps = %v, want the observed margin %v", got, margin)
	}
	if got := reg.Gauge(obs.MetricSlackEps, obs.L("scheme", "tri")).Value(); got != margin {
		t.Fatalf("slack eps gauge = %v, want %v", got, margin)
	}
	// All pairs are resolved now; bounds must still be exact for them.
	if lb, ub := s.Bounds(3, 7); lb != 0.95 || ub != 0.95 {
		t.Fatalf("resolved violating pair relaxed: [%v,%v]", lb, ub)
	}
}

func TestSharedSessionSlackSurface(t *testing.T) {
	evil := violatingSpace{Space: tightSpace(10), i: 1, j: 8, d: 0.95}
	s := NewSession(metric.NewOracle(evil), SchemeTri, WithSlack(SlackPolicy{Auto: true}))
	sh := Share(s)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			sh.Dist(i, j)
		}
	}
	if sh.SlackEps() != s.SlackEps() {
		t.Fatalf("SharedSession.SlackEps = %v, Session = %v", sh.SlackEps(), s.SlackEps())
	}
	if (sh.ViolationErr() == nil) != (s.ViolationErr() == nil) {
		t.Fatal("SharedSession.ViolationErr disagrees with Session")
	}
}

func TestSlackWithFaultmetricPerturbation(t *testing.T) {
	// End-to-end: the injector's MarginBound is a valid Additive slack —
	// every relaxed interval contains the perturbed oracle's value.
	n := 20
	base := datasets.RandomMetric(n, 11)
	cfg := faultmetric.Config{Seed: 13, NearMetricEps: 0.2}
	inj := faultmetric.New(base, cfg)
	s := NewFallibleSession(inj, SchemeTri,
		WithSlack(SlackPolicy{Additive: cfg.MarginBound()}))
	for i := 1; i < n; i += 2 {
		if _, err := s.DistErr(0, i); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lb, ub := s.Bounds(i, j)
			d, err := inj.DistanceCtx(ctx, i, j)
			if err != nil {
				t.Fatal(err)
			}
			if d < lb-1e-12 || d > ub+1e-12 {
				t.Fatalf("relaxed interval [%v,%v] excludes true d(%d,%d)=%v", lb, ub, i, j, d)
			}
		}
	}
}

func TestParseSlackSpec(t *testing.T) {
	cases := []struct {
		spec string
		want SlackPolicy
		ok   bool
	}{
		{"auto", SlackPolicy{Auto: true}, true},
		{" auto ", SlackPolicy{Auto: true}, true},
		{"eps=0.1", SlackPolicy{Additive: 0.1}, true},
		{"eps=0.1,ratio=1.05", SlackPolicy{Additive: 0.1, Ratio: 1.05}, true},
		{"ratio=2", SlackPolicy{Ratio: 2}, true},
		{"", SlackPolicy{}, false},                // no slack declared
		{"eps=0", SlackPolicy{}, false},           // inactive
		{"ratio=1", SlackPolicy{}, false},         // inactive
		{"eps=-0.1", SlackPolicy{}, false},        // out of range
		{"ratio=0.5", SlackPolicy{}, false},       // out of range
		{"eps=NaN", SlackPolicy{}, false},         // not finite
		{"eps=0.1,eps=0.2", SlackPolicy{}, false}, // duplicate key
		{"epsilon=0.1", SlackPolicy{}, false},     // unknown key
		{"eps", SlackPolicy{}, false},             // not key=value
	}
	for _, c := range cases {
		got, err := ParseSlackSpec(c.spec)
		if c.ok != (err == nil) {
			t.Errorf("ParseSlackSpec(%q): err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseSlackSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}
