package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

// TestSharedSessionSingleFlightDist proves the single-flight guarantee in
// its purest form: many goroutines resolving the same unresolved pair at
// the same time result in exactly one oracle call, with every goroutine
// seeing the exact distance.
func TestSharedSessionSingleFlightDist(t *testing.T) {
	m := datasets.RandomMetric(10, 61)
	inst := metric.NewInstrumented(m, 5*time.Millisecond)
	o := metric.NewOracle(inst)
	c := Share(NewSession(o, SchemeTri))

	const goroutines = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]float64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			results[g] = c.Dist(3, 7)
		}(g)
	}
	close(start)
	wg.Wait()

	want := m.Distance(3, 7)
	for g, d := range results {
		if d != want {
			t.Fatalf("goroutine %d got %v, want %v", g, d, want)
		}
	}
	if calls := inst.PairCalls(3, 7); calls != 1 {
		t.Fatalf("pair (3,7) cost %d oracle calls under contention, want 1 (single-flight)", calls)
	}
}

// TestSharedSessionStress hammers the concurrent comparison API over a
// small universe (maximum pair contention) against a latency-injecting
// oracle, asserting throughout that
//
//   - no pair is ever resolved by the oracle more than once (single-flight
//     deduplication, the zero-duplicate-calls acceptance criterion),
//   - every bound interval brackets the true distance (lb ≤ d ≤ ub), and
//   - every answer matches ground truth computed directly on the matrix.
//
// Run with -race this doubles as the memory-safety proof for the
// unlocked-oracle resolve path.
func TestSharedSessionStress(t *testing.T) {
	const (
		n          = 24
		goroutines = 12
		iters      = 300
	)
	for _, scheme := range []Scheme{SchemeTri, SchemeSPLUB, SchemeADM} {
		m := datasets.RandomMetric(n, 62)
		inst := metric.NewInstrumented(m, 100*time.Microsecond)
		o := metric.NewOracle(inst)
		c := Share(NewSession(o, scheme))

		var wg sync.WaitGroup
		errs := make(chan string, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100 + g)))
				fail := func(msg string) {
					select {
					case errs <- msg:
					default:
					}
				}
				for it := 0; it < iters; it++ {
					i, j := rng.Intn(n), rng.Intn(n)
					k, l := rng.Intn(n), rng.Intn(n)
					if i == j || k == l {
						continue
					}
					switch it % 4 {
					case 0:
						got := c.Less(i, j, k, l)
						if want := m.Distance(i, j) < m.Distance(k, l); got != want {
							fail("Less diverged from ground truth")
						}
					case 1:
						thr := rng.Float64()
						d, less := c.DistIfLess(i, j, thr)
						want := m.Distance(i, j)
						if less != (want < thr) || (less && d != want) {
							fail("DistIfLess diverged from ground truth")
						}
					case 2:
						thr := rng.Float64()
						if got := c.LessThan(i, j, thr); got != (m.Distance(i, j) < thr) {
							fail("LessThan diverged from ground truth")
						}
					case 3:
						lb, ub := c.Bounds(i, j)
						d := m.Distance(i, j)
						if lb > d+1e-9 || ub < d-1e-9 {
							fail("bounds do not bracket the true distance")
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for msg := range errs {
			t.Fatalf("scheme %v: %s", scheme, msg)
		}

		if max := inst.MaxPairCalls(); max > 1 {
			t.Fatalf("scheme %v: some pair cost %d oracle calls, want at most 1", scheme, max)
		}
		if st := c.Stats(); st.OracleCalls != o.Calls() {
			t.Fatalf("scheme %v: session counted %d oracle calls, oracle saw %d", scheme, st.OracleCalls, o.Calls())
		}
	}
}

// TestSharedSessionMatchesSequentialAnswers runs the same random
// comparison workload through a sequential Session and a SharedSession
// under heavy concurrency: every individual answer must agree, because
// each is exact regardless of resolution order.
func TestSharedSessionMatchesSequentialAnswers(t *testing.T) {
	const n = 20
	m := datasets.RandomMetric(n, 63)

	type q struct{ i, j, k, l int }
	rng := rand.New(rand.NewSource(64))
	queries := make([]q, 400)
	for x := range queries {
		for {
			queries[x] = q{rng.Intn(n), rng.Intn(n), rng.Intn(n), rng.Intn(n)}
			if queries[x].i != queries[x].j && queries[x].k != queries[x].l {
				break
			}
		}
	}

	seq := NewSession(metric.NewOracle(m), SchemeTri)
	want := make([]bool, len(queries))
	for x, qu := range queries {
		want[x] = seq.Less(qu.i, qu.j, qu.k, qu.l)
	}

	c := Share(NewSession(metric.NewOracle(m), SchemeTri))
	got := make([]bool, len(queries))
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for x := w; x < len(queries); x += workers {
				qu := queries[x]
				got[x] = c.Less(qu.i, qu.j, qu.k, qu.l)
			}
		}(w)
	}
	wg.Wait()
	for x := range queries {
		if got[x] != want[x] {
			t.Fatalf("query %d: concurrent Less = %v, sequential = %v", x, got[x], want[x])
		}
	}
}
