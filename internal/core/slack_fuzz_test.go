package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"metricprox/internal/datasets"
	"metricprox/internal/faultmetric"
	"metricprox/internal/metric"
)

// FuzzSlackSoundness is the executable form of the ε-slack theorem: under
// injected triangle violations with additive margin ≤ ε, a session
// declaring SlackPolicy{Additive: ε} keeps every relaxed derived interval
// sound — it contains both the value the (perturbed) oracle serves and
// the fault-free distance. Resolved pairs are exact for the oracle the
// session actually talks to, which is the commit discipline's contract.
func FuzzSlackSoundness(f *testing.F) {
	f.Add(int64(1), 0.1, uint8(12))
	f.Add(int64(7), 0.4, uint8(20))
	f.Add(int64(42), 0.01, uint8(6))
	f.Add(int64(-3), 0.25, uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, eps float64, n uint8) {
		if !(eps > 0) || eps > 0.5 || math.IsNaN(eps) {
			t.Skip()
		}
		size := 4 + int(n)%21
		base := datasets.RandomMetric(size, seed)
		cfg := faultmetric.Config{Seed: seed, NearMetricEps: eps}
		inj := faultmetric.New(base, cfg)
		s := NewFallibleSession(inj, SchemeTri,
			WithSlack(SlackPolicy{Additive: cfg.MarginBound()}),
			WithAuditor(metric.NewAuditor(0)))

		// Resolve a seed-derived subset of pairs to grow the known graph.
		rng := rand.New(rand.NewSource(seed))
		for q := 0; q < 3*size; q++ {
			i, j := rng.Intn(size), rng.Intn(size)
			if i == j {
				continue
			}
			if _, err := s.DistErr(i, j); err != nil {
				t.Fatalf("DistErr(%d,%d): %v", i, j, err)
			}
		}

		ctx := context.Background()
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				lb, ub := s.Bounds(i, j)
				served, err := inj.DistanceCtx(ctx, i, j)
				if err != nil {
					t.Fatal(err)
				}
				if served < lb-1e-9 || served > ub+1e-9 {
					t.Fatalf("interval [%v,%v] excludes served d(%d,%d)=%v (eps=%v, n=%d)",
						lb, ub, i, j, served, eps, size)
				}
				if i == j {
					continue
				}
				if _, known := s.Known(i, j); !known {
					// Derived intervals must also cover the fault-free
					// distance: the perturbation only shrinks values, by
					// less than the declared ε.
					truth := base.Distance(i, j)
					if truth < lb-1e-9 || truth > ub+1e-9 {
						t.Fatalf("relaxed interval [%v,%v] excludes fault-free d(%d,%d)=%v (eps=%v)",
							lb, ub, i, j, truth, eps)
					}
				}
			}
		}
		// The injector keeps its MarginBound promise: the auditor, which
		// saw every committed triangle, never measured a larger margin.
		if m := s.Auditor().Margin(); m > cfg.MarginBound()+1e-9 {
			t.Fatalf("observed margin %v exceeds the injected bound %v", m, cfg.MarginBound())
		}
	})
}
