package core

import (
	"math/rand"
	"testing"
)

// TestSessionBoundsBatchMatchesScalar pins the batch entry point to the
// scalar one on both dispatch paths — Tri implements bounds.BatchBounder,
// SPLUB falls back to the per-pair loop — including the BoundProbes
// accounting, which reconciliation dashboards difference against
// comparisons and would notice drifting.
func TestSessionBoundsBatchMatchesScalar(t *testing.T) {
	cases := []struct {
		name   string
		scheme Scheme
	}{
		{"tri-batchbounder", SchemeTri},
		{"splub-fallback", SchemeSPLUB},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const n = 24
			s, _, _ := newTestSession(t, n, 11, tc.scheme, nil)
			rng := rand.New(rand.NewSource(3))
			for k := 0; k < 80; k++ {
				if i, j := rng.Intn(n), rng.Intn(n); i != j {
					s.Dist(i, j)
				}
			}
			var is, js []int
			for q := 0; q < 200; q++ {
				is = append(is, rng.Intn(n))
				js = append(js, rng.Intn(n))
			}
			is, js = append(is, 5), append(js, 5) // self-pair

			wantLB := make([]float64, len(is))
			wantUB := make([]float64, len(is))
			base := s.Stats().BoundProbes
			for q := range is {
				wantLB[q], wantUB[q] = s.Bounds(is[q], js[q])
			}
			scalarProbes := s.Stats().BoundProbes - base

			lb := make([]float64, len(is))
			ub := make([]float64, len(is))
			s.BoundsBatch(is, js, lb, ub)
			batchProbes := s.Stats().BoundProbes - base - scalarProbes
			if batchProbes != scalarProbes {
				t.Fatalf("batch counted %d probes, scalar %d", batchProbes, scalarProbes)
			}
			for q := range is {
				if lb[q] != wantLB[q] || ub[q] != wantUB[q] {
					t.Fatalf("pair (%d,%d): batch [%v,%v], scalar [%v,%v]",
						is[q], js[q], lb[q], ub[q], wantLB[q], wantUB[q])
				}
			}

			defer func() {
				if recover() == nil {
					t.Fatal("mismatched slice lengths did not panic")
				}
			}()
			s.BoundsBatch(is, js[:1], lb, ub)
		})
	}
}

// TestSharedBoundsBatch smoke-tests the locked wrapper: same answers as
// per-pair Bounds through the shared view.
func TestSharedBoundsBatch(t *testing.T) {
	const n = 16
	s, _, _ := newTestSession(t, n, 13, SchemeTri, nil)
	c := Share(s)
	rng := rand.New(rand.NewSource(5))
	for k := 0; k < 40; k++ {
		if i, j := rng.Intn(n), rng.Intn(n); i != j {
			c.Dist(i, j)
		}
	}
	is := []int{0, 1, 2, 7, 7, 3}
	js := []int{0, 2, 1, 9, 9, 12}
	lb := make([]float64, len(is))
	ub := make([]float64, len(is))
	c.BoundsBatch(is, js, lb, ub)
	for q := range is {
		wl, wu := c.Bounds(is[q], js[q])
		if lb[q] != wl || ub[q] != wu {
			t.Fatalf("pair (%d,%d): batch [%v,%v], scalar [%v,%v]", is[q], js[q], lb[q], ub[q], wl, wu)
		}
	}
}
