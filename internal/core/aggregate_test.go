package core

import (
	"math/rand"
	"testing"

	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

func randPairs(rng *rand.Rand, n, count int) []Pair {
	var ps []Pair
	for len(ps) < count {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			ps = append(ps, Pair{A: a, B: b})
		}
	}
	return ps
}

func sumDist(m metric.Space, ps []Pair) float64 {
	s := 0.0
	for _, p := range ps {
		s += m.Distance(p.A, p.B)
	}
	return s
}

func TestSumLessThanExact(t *testing.T) {
	for _, sc := range []Scheme{SchemeNoop, SchemeTri, SchemeSPLUB} {
		m := datasets.RandomMetric(20, 61)
		o := metric.NewOracle(m)
		s := NewSession(o, sc)
		rng := rand.New(rand.NewSource(62))
		for trial := 0; trial < 150; trial++ {
			ps := randPairs(rng, 20, 1+rng.Intn(4))
			c := rng.Float64() * float64(len(ps))
			want := sumDist(m, ps) < c
			if got := s.SumLessThan(ps, c); got != want {
				t.Fatalf("scheme %v trial %d: SumLessThan = %v, want %v", sc, trial, got, want)
			}
		}
	}
}

func TestSumLessExact(t *testing.T) {
	for _, sc := range []Scheme{SchemeNoop, SchemeTri} {
		m := datasets.RandomMetric(18, 63)
		o := metric.NewOracle(m)
		s := NewSession(o, sc)
		rng := rand.New(rand.NewSource(64))
		for trial := 0; trial < 150; trial++ {
			left := randPairs(rng, 18, 1+rng.Intn(3))
			right := randPairs(rng, 18, 1+rng.Intn(3))
			want := sumDist(m, left) < sumDist(m, right)
			if got := s.SumLess(left, right); got != want {
				t.Fatalf("scheme %v trial %d: SumLess = %v, want %v", sc, trial, got, want)
			}
		}
	}
}

func TestSumLessThanSavesCalls(t *testing.T) {
	m := datasets.SFPOI(60, 65)
	run := func(sc Scheme) int64 {
		o := metric.NewOracle(m)
		s := NewSession(o, sc)
		s.Bootstrap(PickLandmarks(60, 6, 66))
		rng := rand.New(rand.NewSource(67))
		for trial := 0; trial < 400; trial++ {
			ps := randPairs(rng, 60, 3)
			s.SumLessThan(ps, rng.Float64()*3)
		}
		return o.Calls()
	}
	if tri, noop := run(SchemeTri), run(SchemeNoop); tri >= noop {
		t.Fatalf("aggregate comparisons saved nothing: tri %d, noop %d", tri, noop)
	}
}

func TestSumLessEmptySides(t *testing.T) {
	m := datasets.RandomMetric(5, 68)
	s := NewSession(metric.NewOracle(m), SchemeTri)
	if s.SumLess(nil, nil) {
		t.Fatal("0 < 0 reported true")
	}
	if !s.SumLess(nil, []Pair{{0, 1}}) {
		t.Fatal("0 < positive sum reported false")
	}
	if s.SumLessThan(nil, 0) {
		t.Fatal("0 < 0 threshold reported true")
	}
	if !s.SumLessThan(nil, 0.1) {
		t.Fatal("0 < 0.1 reported false")
	}
}
