package core

import "sync"

// SharedSession is a mutex-guarded view of a Session that is safe for
// concurrent use. All knowledge (resolved pairs, tightened bounds,
// statistics) remains shared: a distance resolved by one goroutine prunes
// comparisons for every other.
//
// The lock is coarse by design — the point of this library is that oracle
// calls dominate; serialising the in-memory bookkeeping costs nothing by
// comparison, and a coarse lock keeps the exactness argument identical to
// the sequential session's.
type SharedSession struct {
	mu sync.Mutex
	s  *Session
}

// Share wraps a Session for concurrent use. The underlying Session must
// not be used directly while the shared view is live.
func Share(s *Session) *SharedSession { return &SharedSession{s: s} }

// N returns the number of objects.
func (c *SharedSession) N() int { return c.s.N() } // immutable, no lock

// MaxDistance returns the configured distance cap.
func (c *SharedSession) MaxDistance() float64 { return c.s.MaxDistance() }

// Dist resolves the exact distance (memoised).
func (c *SharedSession) Dist(i, j int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Dist(i, j)
}

// Known reports an already-resolved pair.
func (c *SharedSession) Known(i, j int) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Known(i, j)
}

// Bounds returns the current bounds without an oracle call.
func (c *SharedSession) Bounds(i, j int) (float64, float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Bounds(i, j)
}

// Less reports whether dist(i,j) < dist(k,l).
func (c *SharedSession) Less(i, j, k, l int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Less(i, j, k, l)
}

// LessThan reports whether dist(i,j) < v.
func (c *SharedSession) LessThan(i, j int, v float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.LessThan(i, j, v)
}

// DistIfLess is the value-needed comparison; see Session.DistIfLess.
func (c *SharedSession) DistIfLess(i, j int, v float64) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.DistIfLess(i, j, v)
}

// Bootstrap resolves landmark rows; see Session.Bootstrap.
func (c *SharedSession) Bootstrap(landmarks []int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Bootstrap(landmarks)
}

// Stats snapshots the session statistics.
func (c *SharedSession) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Stats()
}
