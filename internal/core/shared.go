package core

import (
	"sync"

	"metricprox/internal/pgraph"
)

// SharedSession is a concurrency-safe view of a Session. All knowledge
// (resolved pairs, tightened bounds, statistics) remains shared: a
// distance resolved by one goroutine prunes comparisons for every other.
//
// The lock protects only the in-memory bookkeeping — the partial graph,
// the bound scheme, the statistics. It is never held across an oracle
// round-trip: a comparison first tries to decide itself from bounds under
// the lock, and only when that fails does it resolve distances with the
// lock released. This matters because the library's entire premise is
// that the oracle dominates cost (milliseconds to seconds per call);
// holding a mutex across it would serialise every worker back to
// sequential wall-clock exactly when parallelism pays most.
//
// Concurrent resolutions of the same pair are deduplicated with a
// single-flight map: the first goroutine to need an unresolved pair makes
// the one oracle call, every other goroutine needing that pair blocks on
// the in-flight result. Each pair therefore costs at most one oracle call
// across all workers — the same guarantee the memoising sequential
// Session gives.
//
// Output identity still holds: a comparison is only short-circuited when
// the bounds make its outcome certain, and bounds only tighten as edges
// resolve, so every decision is sound regardless of the interleaving.
// Which comparisons get short-circuited (and hence the call count) does
// depend on resolution order; the answers do not.
type SharedSession struct {
	mu       sync.Mutex
	s        *Session
	inflight map[int64]*flight
}

// Share wraps a Session for concurrent use. The underlying Session must
// not be used directly while the shared view is live.
func Share(s *Session) *SharedSession {
	return &SharedSession{s: s, inflight: make(map[int64]*flight)}
}

// N returns the number of objects.
func (c *SharedSession) N() int { return c.s.N() } // immutable, no lock

// MaxDistance returns the configured distance cap.
func (c *SharedSession) MaxDistance() float64 { return c.s.MaxDistance() } // immutable, no lock

// resolve returns the exact distance for (i, j), making at most one
// oracle call per pair across all goroutines. The lock is released for
// the duration of the oracle round-trip.
func (c *SharedSession) resolve(i, j int) float64 {
	if i == j {
		return 0
	}
	key := pgraph.Key(i, j)
	c.mu.Lock()
	if w, ok := c.s.Known(i, j); ok {
		c.mu.Unlock()
		return w
	}
	if f, ok := c.inflight[key]; ok {
		// Another goroutine owns the oracle call for this pair; wait for
		// its result instead of duplicating the call.
		c.mu.Unlock()
		return f.wait()
	}
	f := newFlight()
	c.inflight[key] = f
	c.mu.Unlock()

	d := c.s.oracleDistance(i, j) // the expensive part, unlocked

	c.mu.Lock()
	c.s.commitResolution(i, j, d)
	delete(c.inflight, key)
	c.mu.Unlock()
	f.finish(d)
	return d
}

// Dist resolves the exact distance (memoised, single-flight).
func (c *SharedSession) Dist(i, j int) float64 { return c.resolve(i, j) }

// Known reports an already-resolved pair.
func (c *SharedSession) Known(i, j int) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Known(i, j)
}

// Bounds returns the current bounds without an oracle call.
func (c *SharedSession) Bounds(i, j int) (float64, float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Bounds(i, j)
}

// Less reports whether dist(i,j) < dist(k,l). The bound-only decision
// runs under the lock; if it is inconclusive both distances are resolved
// with the lock released.
func (c *SharedSession) Less(i, j, k, l int) bool {
	c.mu.Lock()
	r, decided := c.s.decideLess(i, j, k, l)
	c.mu.Unlock()
	if decided {
		return r
	}
	return c.resolve(i, j) < c.resolve(k, l)
}

// LessThan reports whether dist(i,j) < v.
func (c *SharedSession) LessThan(i, j int, v float64) bool {
	c.mu.Lock()
	r, decided := c.s.decideLessThan(i, j, v)
	c.mu.Unlock()
	if decided {
		return r
	}
	return c.resolve(i, j) < v
}

// DistIfLess is the value-needed comparison; see Session.DistIfLess.
func (c *SharedSession) DistIfLess(i, j int, v float64) (float64, bool) {
	c.mu.Lock()
	d, less, decided := c.s.decideDistIfLess(i, j, v)
	c.mu.Unlock()
	if decided {
		return d, less
	}
	d = c.resolve(i, j)
	return d, d < v
}

// Bootstrap resolves landmark rows; see Session.Bootstrap. Bootstrap is a
// setup phase, not a hot path, so it runs under the full lock.
func (c *SharedSession) Bootstrap(landmarks []int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	//proxlint:allow lockheldoracle -- setup phase: Bootstrap runs before workers start, so holding the lock across its oracle calls serialises nothing; resolve() is the hot path and releases the lock around every round-trip
	return c.s.Bootstrap(landmarks)
}

// Stats snapshots the session statistics.
func (c *SharedSession) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Stats()
}
