package core

import (
	"sync"

	"metricprox/internal/obs"
	"metricprox/internal/pgraph"
)

// SharedSession is a concurrency-safe view of a Session. All knowledge
// (resolved pairs, tightened bounds, statistics) remains shared: a
// distance resolved by one goroutine prunes comparisons for every other.
//
// The lock protects only the in-memory bookkeeping — the partial graph,
// the bound scheme, the statistics. It is never held across an oracle
// round-trip: a comparison first tries to decide itself from bounds under
// the lock, and only when that fails does it resolve distances with the
// lock released. This matters because the library's entire premise is
// that the oracle dominates cost (milliseconds to seconds per call);
// holding a mutex across it would serialise every worker back to
// sequential wall-clock exactly when parallelism pays most.
//
// Concurrent resolutions of the same pair are deduplicated with a
// single-flight map: the first goroutine to need an unresolved pair makes
// the one oracle call, every other goroutine needing that pair blocks on
// the in-flight result. Each pair therefore costs at most one oracle call
// across all workers — the same guarantee the memoising sequential
// Session gives.
//
// Output identity still holds: a comparison is only short-circuited when
// the bounds make its outcome certain, and bounds only tighten as edges
// resolve, so every decision is sound regardless of the interleaving.
// Which comparisons get short-circuited (and hence the call count) does
// depend on resolution order; the answers do not.
type SharedSession struct {
	mu       sync.Mutex
	s        *Session
	inflight map[int64]*flight
}

// Share wraps a Session for concurrent use. The underlying Session must
// not be used directly while the shared view is live.
func Share(s *Session) *SharedSession {
	return &SharedSession{s: s, inflight: make(map[int64]*flight)}
}

// N returns the number of objects.
func (c *SharedSession) N() int { return c.s.N() } // immutable, no lock

// MaxDistance returns the configured distance cap.
func (c *SharedSession) MaxDistance() float64 { return c.s.MaxDistance() } // immutable, no lock

// resolve returns the exact distance for (i, j) when the oracle
// cooperates, or a best-effort bounds-midpoint estimate (counting a
// DegradedAnswer, latching OracleErr) when it does not; see resolveErr
// for the error-propagating primitive.
func (c *SharedSession) resolve(i, j int) float64 {
	d, err := c.resolveErr(i, j)
	if err != nil {
		c.s.ins.DegradedAnswers.Inc() // atomic; no lock needed
		c.mu.Lock()
		d = c.s.estimate(i, j)
		c.mu.Unlock()
	}
	return d
}

// resolveErr resolves the exact distance for (i, j), making at most one
// oracle call per pair across all goroutines. The lock is released for
// the duration of the oracle round-trip. A failed attempt is shared with
// every goroutine waiting on the same flight but commits nothing, so the
// pair can be retried by a later call.
func (c *SharedSession) resolveErr(i, j int) (float64, error) {
	if i == j {
		return 0, nil
	}
	key := pgraph.Key(i, j)
	c.mu.Lock()
	if w, ok := c.s.Known(i, j); ok {
		c.mu.Unlock()
		return w, nil
	}
	if f, ok := c.inflight[key]; ok {
		// Another goroutine owns the oracle call for this pair; wait for
		// its result instead of duplicating the call.
		c.mu.Unlock()
		return f.wait()
	}
	f := newFlight()
	c.inflight[key] = f
	c.mu.Unlock()

	d, err := c.s.oracleDistanceErr(i, j) // the expensive part, unlocked

	c.mu.Lock()
	if err != nil {
		c.s.noteOracleErr(err)
	} else {
		c.s.commitResolution(i, j, d)
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	f.finish(d, err)
	return d, err
}

// Dist resolves the exact distance (memoised, single-flight), degrading
// like Session.Dist when the resolution fails.
func (c *SharedSession) Dist(i, j int) float64 { return c.resolve(i, j) }

// DistErr is Dist with error propagation; see Session.DistErr.
func (c *SharedSession) DistErr(i, j int) (float64, error) { return c.resolveErr(i, j) }

// Known reports an already-resolved pair.
func (c *SharedSession) Known(i, j int) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Known(i, j)
}

// Bounds returns the current bounds without an oracle call.
func (c *SharedSession) Bounds(i, j int) (float64, float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Bounds(i, j)
}

// BoundsBatch answers many bound queries in one pass under a single lock
// acquisition; see Session.BoundsBatch. No oracle call is ever made, so
// holding the lock for the whole batch is cheap — and one acquisition per
// batch is the point for prefetch-style callers.
func (c *SharedSession) BoundsBatch(is, js []int, lb, ub []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.BoundsBatch(is, js, lb, ub)
}

// Less reports whether dist(i,j) < dist(k,l). The bound-only decision
// runs under the lock; if it is inconclusive both distances are resolved
// with the lock released. On a failed resolution it degrades like
// Session.Less; use LessErr or LessOutcome to observe failures.
func (c *SharedSession) Less(i, j, k, l int) bool {
	r, _ := c.LessOutcome(i, j, k, l)
	return r
}

// LessErr is Less with error propagation; see Session.LessErr.
func (c *SharedSession) LessErr(i, j, k, l int) (bool, error) {
	c.mu.Lock()
	r, out, gap := c.s.decideLess(i, j, k, l)
	c.mu.Unlock()
	if out != OutcomeUndecided {
		return r, nil
	}
	t0 := c.s.traceStart()
	d1, err := c.resolveErr(i, j)
	var d2 float64
	if err == nil {
		d2, err = c.resolveErr(k, l)
	}
	lat := c.s.traceSince(t0)
	if err != nil {
		c.s.traceCmp(obs.OpLess, i, j, k, l, obs.OutcomeError, gap, lat)
		return false, err
	}
	c.s.traceCmp(obs.OpLess, i, j, k, l, obs.OutcomeOracle, gap, lat)
	return d1 < d2, nil
}

// LessOutcome is Less plus a per-call outcome report; see
// Session.LessOutcome.
func (c *SharedSession) LessOutcome(i, j, k, l int) (result bool, out Outcome) {
	c.mu.Lock()
	r, out, gap := c.s.decideLess(i, j, k, l)
	c.mu.Unlock()
	if out != OutcomeUndecided {
		return r, out
	}
	t0 := c.s.traceStart()
	d1, err := c.resolveErr(i, j)
	var d2 float64
	if err == nil {
		d2, err = c.resolveErr(k, l)
	}
	lat := c.s.traceSince(t0)
	if err == nil {
		c.s.traceCmp(obs.OpLess, i, j, k, l, obs.OutcomeOracle, gap, lat)
		return d1 < d2, OutcomeExact
	}
	c.s.ins.DegradedAnswers.Inc()
	c.s.traceCmp(obs.OpLess, i, j, k, l, obs.OutcomeDegraded, gap, lat)
	c.mu.Lock()
	r = c.s.estimate(i, j) < c.s.estimate(k, l)
	c.mu.Unlock()
	return r, OutcomeUnavailable
}

// LessThan reports whether dist(i,j) < v, degrading like Session.LessThan
// on a failed resolution.
func (c *SharedSession) LessThan(i, j int, v float64) bool {
	c.mu.Lock()
	r, out, gap := c.s.decideLessThan(i, j, v)
	c.mu.Unlock()
	if out != OutcomeUndecided {
		return r
	}
	t0 := c.s.traceStart()
	d, err := c.resolveErr(i, j)
	lat := c.s.traceSince(t0)
	if err != nil {
		c.s.ins.DegradedAnswers.Inc()
		c.s.traceCmp(obs.OpLessThan, i, j, -1, -1, obs.OutcomeDegraded, gap, lat)
		c.mu.Lock()
		r = c.s.estimate(i, j) < v
		c.mu.Unlock()
		return r
	}
	c.s.traceCmp(obs.OpLessThan, i, j, -1, -1, obs.OutcomeOracle, gap, lat)
	return d < v
}

// LessThanErr is LessThan with error propagation; see Session.LessThanErr.
func (c *SharedSession) LessThanErr(i, j int, v float64) (bool, error) {
	c.mu.Lock()
	r, out, gap := c.s.decideLessThan(i, j, v)
	c.mu.Unlock()
	if out != OutcomeUndecided {
		return r, nil
	}
	t0 := c.s.traceStart()
	d, err := c.resolveErr(i, j)
	lat := c.s.traceSince(t0)
	if err != nil {
		c.s.traceCmp(obs.OpLessThan, i, j, -1, -1, obs.OutcomeError, gap, lat)
		return false, err
	}
	c.s.traceCmp(obs.OpLessThan, i, j, -1, -1, obs.OutcomeOracle, gap, lat)
	return d < v, nil
}

// DistIfLess is the value-needed comparison; see Session.DistIfLess. On a
// failed resolution the returned value is an uncommitted estimate.
func (c *SharedSession) DistIfLess(i, j int, v float64) (float64, bool) {
	c.mu.Lock()
	d, less, out, gap := c.s.decideDistIfLess(i, j, v)
	c.mu.Unlock()
	if out != OutcomeUndecided {
		return d, less
	}
	t0 := c.s.traceStart()
	d, err := c.resolveErr(i, j)
	lat := c.s.traceSince(t0)
	if err != nil {
		c.s.ins.DegradedAnswers.Inc()
		c.s.traceCmp(obs.OpDistIfLess, i, j, -1, -1, obs.OutcomeDegraded, gap, lat)
		c.mu.Lock()
		d = c.s.estimate(i, j)
		c.mu.Unlock()
		return d, d < v
	}
	c.s.traceCmp(obs.OpDistIfLess, i, j, -1, -1, obs.OutcomeOracle, gap, lat)
	return d, d < v
}

// DistIfLessErr is DistIfLess with error propagation; see
// Session.DistIfLessErr.
func (c *SharedSession) DistIfLessErr(i, j int, v float64) (float64, bool, error) {
	c.mu.Lock()
	d, less, out, gap := c.s.decideDistIfLess(i, j, v)
	c.mu.Unlock()
	if out != OutcomeUndecided {
		return d, less, nil
	}
	t0 := c.s.traceStart()
	d, err := c.resolveErr(i, j)
	lat := c.s.traceSince(t0)
	if err != nil {
		c.s.traceCmp(obs.OpDistIfLess, i, j, -1, -1, obs.OutcomeError, gap, lat)
		return 0, false, err
	}
	c.s.traceCmp(obs.OpDistIfLess, i, j, -1, -1, obs.OutcomeOracle, gap, lat)
	return d, d < v, nil
}

// Bootstrap resolves landmark rows; see Session.Bootstrap. Bootstrap is a
// setup phase, not a hot path, so it runs under the full lock.
func (c *SharedSession) Bootstrap(landmarks []int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	//proxlint:allow lockheldoracle -- setup phase: Bootstrap runs before workers start, so holding the lock across its oracle calls serialises nothing; resolve() is the hot path and releases the lock around every round-trip
	return c.s.Bootstrap(landmarks)
}

// BootstrapErr is Bootstrap with error propagation; see
// Session.BootstrapErr.
func (c *SharedSession) BootstrapErr(landmarks []int) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//proxlint:allow lockheldoracle -- setup phase; see Bootstrap
	return c.s.BootstrapErr(landmarks)
}

// OracleErr returns the first resolution failure the session has seen;
// see Session.OracleErr.
func (c *SharedSession) OracleErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.OracleErr()
}

// ViolationErr returns the first triangle-inequality violation the
// session's auditor observed; see Session.ViolationErr. The auditor is
// internally synchronised — concurrent resolutions audit without the
// session lock held beyond the usual commit bookkeeping.
func (c *SharedSession) ViolationErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.ViolationErr()
}

// SlackEps returns the additive slack currently applied to derived
// intervals; see Session.SlackEps.
func (c *SharedSession) SlackEps() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.SlackEps()
}

// StoreErr returns the first failed append to the attached cache store;
// see Session.StoreErr.
func (c *SharedSession) StoreErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.StoreErr()
}

// Stats snapshots the session statistics.
func (c *SharedSession) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Stats()
}
