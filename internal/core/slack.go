// Near-metric robustness: the ε-slack contract and the violation auditor
// hook. See DESIGN.md §12.
//
// Every bound scheme derives its intervals from the triangle inequality;
// a real oracle that violates it slightly (traffic-dependent times,
// learned comparators) silently breaks output preservation. A SlackPolicy
// declares the tolerated violation — d(x,z) ≤ ρ·(d(x,y)+d(y,z)) + ε —
// and the session restores soundness by widening every *derived* interval
// to [lb−ε, ub+ε] (for ρ via the Tri scheme's relaxation machinery).
// Oracle-resolved values stay exact and remain the only thing committed to
// the graph, the bound scheme, or the cache store; the relaxation touches
// nothing durable, which is the same commit-discipline argument the
// schemes already rely on (and the slackescape analyzer enforces it).
package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"metricprox/internal/metric"
	"metricprox/internal/obs"
)

// SlackPolicy declares how far the oracle may stray from a true metric:
// d(x,z) ≤ Ratio·(d(x,y)+d(y,z)) + Additive for every triple. Under an
// active policy the session widens every derived bound interval
// accordingly, so comparisons short-circuited from bounds remain correct
// for the declared near-metric; such decisions are counted as
// Stats.SlackResolved and traced with outcome "slack".
//
// Additive slack is only sound for schemes whose intervals chain a single
// triangle per derivation — SchemeNoop, SchemeTri, SchemeLAESA,
// SchemeTLAESA. Multi-hop schemes (SPLUB, ADM, DFT, Hybrid) accumulate
// one margin per hop, so a fixed ε does not bound their error and the
// constructor panics on the combination. Ratio slack reuses the
// WithRelaxation machinery and is limited to SchemeNoop and SchemeTri for
// the same reason.
type SlackPolicy struct {
	// Additive is ε: the worst additive triangle-violation margin the
	// oracle is declared (or observed) to have. Must be ≥ 0 and finite.
	Additive float64
	// Ratio is ρ: the multiplicative violation factor. 0 or 1 means
	// none; values > 1 fold into the session's relaxation factor.
	Ratio float64
	// Auto grows the effective ε beyond Additive as the session's
	// violation auditor observes larger margins on resolved triangles.
	// In-process sessions derive bounds fresh on every query, so an
	// escalation takes effect immediately; remote mirrors watch the
	// served ε and drop their cached intervals when it rises
	// (proxclient).
	Auto bool
}

// Active reports whether the policy relaxes anything.
func (p SlackPolicy) Active() bool {
	return p.Additive > 0 || p.Ratio > 1 || p.Auto
}

// Relax widens one derived interval by eps, clamped to [0, maxDist]. The
// result is a relaxed-bound estimate pair: sound for deciding comparisons
// under the declared near-metric, but never to be committed or serialized
// as an exact distance (the slackescape analyzer tracks values returned
// here into AddEdge, cachestore, and WireFloat sinks).
func (p SlackPolicy) Relax(lb, ub, eps, maxDist float64) (float64, float64) {
	lb -= eps
	if lb < 0 {
		lb = 0
	}
	ub += eps
	if ub > maxDist {
		ub = maxDist
	}
	return lb, ub
}

// WithSlack declares the oracle a near-metric and activates ε-slack mode;
// see SlackPolicy for the contract and the scheme restrictions.
func WithSlack(p SlackPolicy) Option {
	if p.Additive < 0 || math.IsNaN(p.Additive) || math.IsInf(p.Additive, 0) {
		panic("core: SlackPolicy.Additive must be ≥ 0 and finite")
	}
	if p.Ratio != 0 && (p.Ratio < 1 || math.IsInf(p.Ratio, 0) || math.IsNaN(p.Ratio)) {
		panic("core: SlackPolicy.Ratio must be ≥ 1 and finite (or 0 for none)")
	}
	return func(s *Session) {
		s.slack = p
		if p.Ratio > 1 && p.Ratio > s.rho {
			// Ratio slack is exactly a ρ-relaxed metric declaration; the
			// Tri scheme's relaxation machinery produces the widened
			// intervals and the constructor's existing gate rejects
			// schemes that cannot support it.
			s.rho = p.Ratio
		}
	}
}

// WithAuditor attaches a triangle-violation auditor: every oracle
// resolution is checked against the triangles it closes on the known-edge
// graph (exactly the triples the Tri scheme enumerates — zero extra
// oracle calls). The first violation is surfaced by ViolationErr and the
// running worst margin feeds an Auto slack policy. Attach the same
// auditor to an obs.Registry (metric.Auditor.Observe) for the
// metric_violation_* series.
func WithAuditor(a *metric.Auditor) Option {
	if a == nil {
		panic("core: WithAuditor requires a non-nil auditor")
	}
	return func(s *Session) { s.auditor = a }
}

// Auditor returns the attached violation auditor, or nil.
func (s *Session) Auditor() *metric.Auditor { return s.auditor }

// Slack returns the session's slack policy (zero value when none).
func (s *Session) Slack() SlackPolicy { return s.slack }

// ViolationErr returns the first triangle-inequality violation the
// session's auditor observed among resolved distances, or nil. The result
// is a *metric.ViolationError wrapping metric.ErrNonMetric. In strict
// mode (auditor attached, no slack policy) a non-nil ViolationErr means
// the run's output-preservation guarantee is void and the oracle needs
// either an ε-slack declaration or offline calibration
// (cmd/metricprox -calibrate).
func (s *Session) ViolationErr() error {
	if s.auditor == nil {
		return nil
	}
	return s.auditor.Err()
}

// SlackEps returns the additive slack currently applied to derived
// intervals: 0 when additive slack is off, max(Additive, auditor margin)
// under an Auto policy. Remote mirrors compare successive values to
// detect escalation and drop cached intervals (server bounds no longer
// only tighten once ε can grow).
func (s *Session) SlackEps() float64 {
	if !s.slackAdditive() {
		return 0
	}
	return s.slackEps()
}

// slackAdditive reports whether additive interval widening is configured.
func (s *Session) slackAdditive() bool {
	return s.slack.Additive > 0 || s.slack.Auto
}

// slackEps computes the effective additive ε. Callers check
// slackAdditive first.
func (s *Session) slackEps() float64 {
	eps := s.slack.Additive
	if s.slack.Auto && s.auditor != nil {
		if m := s.auditor.Margin(); m > eps {
			eps = m
		}
	}
	return eps
}

// slackOn reports whether derived intervals are currently relaxed — the
// decision-path test for counting a bounds-settled comparison as
// "resolved under slack".
func (s *Session) slackOn() bool {
	if s.slack.Ratio > 1 {
		return true
	}
	return s.slackAdditive() && s.slackEps() > 0
}

// boundsOutcome classifies a comparison settled from bound intervals —
// OutcomeBounds normally, OutcomeSlack (counted in Stats.SlackResolved)
// while the intervals are relaxed by an active slack policy — returning
// both the Outcome and the obs trace label for it.
func (s *Session) boundsOutcome() (Outcome, string) {
	if s.slackOn() {
		s.ins.SlackResolved.Inc()
		return OutcomeSlack, obs.OutcomeSlack
	}
	return OutcomeBounds, obs.OutcomeBounds
}

// auditTriangles checks every triangle the fresh resolution (i, j, d)
// closes against the known-edge graph: the common neighbours of i and j,
// found by a two-cursor merge of the sorted adjacency rows. Rows are
// borrowed before AddEdge commits the new edge (the commit may grow the
// adjacency slabs and invalidate borrowed rows) and never escape this
// frame. Cost is O(deg(i)+deg(j)) comparisons and zero oracle calls.
func (s *Session) auditTriangles(i, j int, d float64) {
	ni, wi := s.g.Row(i)
	nj, wj := s.g.Row(j)
	// One resolution closes deg∩ triangles; batch them so the auditor's
	// atomic cells are touched once per resolution, not once per triangle.
	ab := s.auditor.Batch()
	for a, b := 0, 0; a < len(ni) && b < len(nj); {
		switch {
		case ni[a] < nj[b]:
			a++
		case ni[a] > nj[b]:
			b++
		default:
			ab.Check(i, j, int(ni[a]), d, wi[a], wj[b])
			a++
			b++
		}
	}
	ab.Flush()
}

// SlackSupported reports whether policy p can be soundly combined with
// scheme, as a returned error instead of the constructor panic — for
// transport layers (internal/service) that must map a bad combination
// onto a 4xx response rather than crash the daemon.
func SlackSupported(p SlackPolicy, scheme Scheme) error {
	if p.Additive < 0 || math.IsNaN(p.Additive) || math.IsInf(p.Additive, 0) {
		return fmt.Errorf("core: SlackPolicy.Additive must be ≥ 0 and finite, got %v", p.Additive)
	}
	if p.Ratio != 0 && (p.Ratio < 1 || math.IsInf(p.Ratio, 0) || math.IsNaN(p.Ratio)) {
		return fmt.Errorf("core: SlackPolicy.Ratio must be ≥ 1 and finite (or 0 for none), got %v", p.Ratio)
	}
	if p.Additive > 0 || p.Auto {
		switch scheme {
		case SchemeNoop, SchemeTri, SchemeLAESA, SchemeTLAESA:
		default:
			return fmt.Errorf("core: scheme %v does not support additive slack (its bounds chain more than one triangle per derivation)", scheme)
		}
	}
	if p.Ratio > 1 {
		switch scheme {
		case SchemeNoop, SchemeTri:
		default:
			return fmt.Errorf("core: scheme %v does not support ratio slack (relaxation is limited to noop/tri)", scheme)
		}
	}
	return nil
}

// ParseSlackSpec parses the CLI slack specification:
//
//	-slack auto
//	-slack eps=X[,ratio=R]
//
// "auto" grows ε from the attached auditor's observed margin; the
// explicit form declares the near-metric contract up front. Range checks
// mirror SlackSupported; unknown and duplicate keys are rejected so a
// typo cannot silently run strict.
func ParseSlackSpec(spec string) (SlackPolicy, error) {
	if strings.TrimSpace(spec) == "auto" {
		return SlackPolicy{Auto: true}, nil
	}
	var p SlackPolicy
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok || val == "" {
			return SlackPolicy{}, fmt.Errorf("core: bad field %q in slack spec %q (want key=value, or the single word auto)", field, spec)
		}
		if seen[key] {
			return SlackPolicy{}, fmt.Errorf("core: duplicate key %q in slack spec %q", key, spec)
		}
		seen[key] = true
		switch key {
		case "eps":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return SlackPolicy{}, fmt.Errorf("core: bad eps %q: %v", val, err)
			}
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return SlackPolicy{}, fmt.Errorf("core: eps must be ≥ 0 and finite, got %v", v)
			}
			p.Additive = v
		case "ratio":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return SlackPolicy{}, fmt.Errorf("core: bad ratio %q: %v", val, err)
			}
			if !(r >= 1) || math.IsInf(r, 0) {
				return SlackPolicy{}, fmt.Errorf("core: ratio must be ≥ 1 and finite, got %v", r)
			}
			p.Ratio = r
		default:
			return SlackPolicy{}, fmt.Errorf("core: unknown key %q in slack spec %q (known: eps, ratio; or auto)", key, spec)
		}
	}
	if !p.Active() {
		return SlackPolicy{}, fmt.Errorf("core: slack spec %q declares no slack (need eps > 0, ratio > 1, or auto)", spec)
	}
	return p, nil
}

// validateSlackScheme enforces the per-scheme soundness restrictions of
// an additive slack policy at construction time; see SlackPolicy.
func validateSlackScheme(p SlackPolicy, scheme Scheme, hasComparator bool) {
	if !(p.Additive > 0 || p.Auto) {
		return
	}
	switch scheme {
	case SchemeNoop, SchemeTri, SchemeLAESA, SchemeTLAESA:
	default:
		panic(fmt.Sprintf("core: scheme %v does not support additive slack: its bounds chain more than one triangle per derivation, so a per-triangle margin ε does not bound the interval error", scheme))
	}
	if hasComparator {
		panic("core: direct comparators do not support additive slack (their proofs assume a true metric)")
	}
}
