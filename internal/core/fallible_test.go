package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"metricprox/internal/cachestore"
	"metricprox/internal/metric"
)

// gridSpace is a tiny deterministic metric: points on a line with
// distance |i−j|/n, so every pairwise distance is exact in float64.
type gridSpace struct{ n int }

func (g gridSpace) Len() int { return g.n }
func (g gridSpace) Distance(i, j int) float64 {
	d := i - j
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(g.n)
}

// scriptedFallible fails a scripted number of DistanceCtx calls before
// serving exact gridSpace distances. It also carries a switchable Ready
// so degraded bounds-only accounting can be exercised.
type scriptedFallible struct {
	mu       sync.Mutex
	space    gridSpace
	failures int // calls to fail before succeeding
	calls    int
	ready    bool

	retries, timeouts, opens int64 // reported via PolicyCounters
}

func (f *scriptedFallible) Len() int { return f.space.Len() }

func (f *scriptedFallible) DistanceCtx(ctx context.Context, i, j int) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	f.mu.Lock()
	f.calls++
	call, fail := f.calls, false
	if f.failures > 0 {
		f.failures--
		fail = true
	}
	f.mu.Unlock()
	if fail {
		return 0, fmt.Errorf("scripted failure (call %d)", call)
	}
	return f.space.Distance(i, j), nil
}

func (f *scriptedFallible) Ready() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ready
}

func (f *scriptedFallible) PolicyCounters() (retries, timeouts, breakerOpens int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.retries, f.timeouts, f.opens
}

func newScripted(n, failures int) *scriptedFallible {
	return &scriptedFallible{space: gridSpace{n: n}, failures: failures, ready: true}
}

func TestDistErrFailsThenRetrySucceeds(t *testing.T) {
	fo := newScripted(8, 1)
	s := NewFallibleSession(fo, SchemeTri)
	if _, err := s.DistErr(0, 4); !errors.Is(err, ErrOracleUnavailable) {
		t.Fatalf("DistErr on failing oracle: err = %v, want ErrOracleUnavailable", err)
	}
	if _, ok := s.Known(0, 4); ok {
		t.Fatal("failed resolution was committed to the graph")
	}
	if s.Stats().OracleCalls != 0 {
		t.Fatalf("failed resolution counted as an oracle call: %+v", s.Stats())
	}
	if s.OracleErr() == nil {
		t.Fatal("OracleErr not latched after a failed resolution")
	}
	// The pair stays retryable: the next call succeeds and commits.
	d, err := s.DistErr(0, 4)
	if err != nil || d != 0.5 {
		t.Fatalf("retry after failure: (%v, %v), want (0.5, nil)", d, err)
	}
	if w, ok := s.Known(0, 4); !ok || w != 0.5 {
		t.Fatalf("retried resolution not committed: (%v, %v)", w, ok)
	}
}

func TestLegacyDistDegradesToUncommittedEstimate(t *testing.T) {
	fo := newScripted(8, 100) // fails for the whole test
	s := NewFallibleSession(fo, SchemeTri)
	d := s.Dist(0, 4)
	lo, hi := s.Bounds(0, 4)
	if d != (lo+hi)/2 {
		t.Fatalf("degraded Dist = %v, want bounds midpoint %v", d, (lo+hi)/2)
	}
	if _, ok := s.Known(0, 4); ok {
		t.Fatal("estimate was committed to the graph")
	}
	st := s.Stats()
	if st.DegradedAnswers != 1 {
		t.Fatalf("DegradedAnswers = %d, want 1", st.DegradedAnswers)
	}
	if st.OracleCalls != 0 {
		t.Fatalf("degraded answer counted as oracle call: %+v", st)
	}
	if s.OracleErr() == nil {
		t.Fatal("OracleErr not latched")
	}
}

func TestLessOutcomeClassification(t *testing.T) {
	fo := newScripted(16, 0)
	s := NewFallibleSession(fo, SchemeTri)
	// No knowledge yet: must resolve → exact.
	if r, out := s.LessOutcome(0, 1, 0, 15); !r || out != OutcomeExact {
		t.Fatalf("cold comparison = (%v, %v), want (true, exact)", r, out)
	}
	// Same pairs again: cache hit → exact.
	if r, out := s.LessOutcome(0, 1, 0, 15); !r || out != OutcomeExact {
		t.Fatalf("cached comparison = (%v, %v), want (true, exact)", r, out)
	}
	// dist(0,1)=1/16 vs dist(0,14): triangle bounds from the resolved
	// edges prove it without resolving (0,14) exactly only if conclusive;
	// accept either exact or bounds but not unavailable.
	if _, out := s.LessOutcome(0, 1, 0, 14); out == OutcomeUnavailable || out == OutcomeUndecided {
		t.Fatalf("healthy oracle produced outcome %v", out)
	}
	// Now break the oracle: an undecidable comparison degrades.
	fo.mu.Lock()
	fo.failures = 1 << 30
	fo.mu.Unlock()
	if _, out := s.LessOutcome(3, 9, 5, 12); out != OutcomeUnavailable {
		t.Fatalf("broken oracle comparison outcome = %v, want unavailable", out)
	}
	if s.Stats().DegradedAnswers == 0 {
		t.Fatal("unavailable outcome did not count a DegradedAnswer")
	}
}

func TestBoundsOnlyAnswersCountDegradedWhileNotReady(t *testing.T) {
	fo := newScripted(8, 0)
	s := NewFallibleSession(fo, SchemeTri)
	if d, err := s.DistErr(0, 7); err != nil || d != 7.0/8 {
		t.Fatalf("seed resolution failed: (%v, %v)", d, err)
	}
	fo.mu.Lock()
	fo.ready = false // breaker open from now on
	fo.mu.Unlock()
	// dist(0,7) is known exactly: cache hit, not degraded.
	if r, err := s.LessThanErr(0, 7, 1); err != nil || !r {
		t.Fatalf("cache-hit comparison = (%v, %v)", r, err)
	}
	before := s.Stats().DegradedAnswers
	// dist(1,2) < 2 is provable from the a-priori cap maxDist=1 without
	// any oracle call — a bounds answer while the breaker is open.
	if r, err := s.LessThanErr(1, 2, 2); err != nil || !r {
		t.Fatalf("bounds comparison = (%v, %v)", r, err)
	}
	st := s.Stats()
	if st.DegradedAnswers != before+1 {
		t.Fatalf("DegradedAnswers = %d, want %d (bounds answer while breaker open)", st.DegradedAnswers, before+1)
	}
	if st.SavedComparisons == 0 {
		t.Fatal("bounds answer not counted as saved")
	}
}

func TestStatsMirrorsPolicyCounters(t *testing.T) {
	fo := newScripted(8, 0)
	fo.retries, fo.timeouts, fo.opens = 7, 2, 1
	s := NewFallibleSession(fo, SchemeNoop)
	st := s.Stats()
	if st.Retries != 7 || st.Timeouts != 2 || st.BreakerOpens != 1 {
		t.Fatalf("policy counters not mirrored: %+v", st)
	}
}

func TestBootstrapErrAbortsSoundly(t *testing.T) {
	fo := newScripted(12, 0)
	landmarks := []int{0, 6}
	s := NewFallibleSessionWithLandmarks(fo, SchemeLAESA, landmarks)
	fo.mu.Lock()
	fo.failures = 1 // the first bootstrap resolution fails, aborting it
	fo.mu.Unlock()
	spent, err := s.BootstrapErr(landmarks)
	if err == nil {
		t.Fatal("BootstrapErr over failing oracle returned nil error")
	}
	if !errors.Is(err, ErrOracleUnavailable) {
		t.Fatalf("bootstrap abort error = %v, want ErrOracleUnavailable", err)
	}
	if spent != 0 {
		// DistErr fails on the very first call (failures=5 > 0), so no
		// calls were spent before the abort.
		t.Fatalf("spent = %d calls before abort, want 0", spent)
	}
	// The abort consumed the only scripted failure, so the oracle has
	// recovered; the partially bootstrapped session must answer exactly.
	for i := 1; i < 12; i++ {
		d, derr := s.DistErr(0, i)
		if derr != nil {
			t.Fatalf("DistErr(0,%d) after recovery: %v", i, derr)
		}
		if want := (gridSpace{n: 12}).Distance(0, i); d != want {
			t.Fatalf("DistErr(0,%d) = %v, want %v", i, d, want)
		}
	}
	// A completed second bootstrap fills the remaining rows.
	if _, err := s.BootstrapErr(landmarks); err != nil {
		t.Fatalf("bootstrap after recovery: %v", err)
	}
}

func TestSharedSessionErrorPropagationAndRetry(t *testing.T) {
	fo := newScripted(8, 1)
	c := Share(NewFallibleSession(fo, SchemeTri))
	if _, err := c.DistErr(2, 5); !errors.Is(err, ErrOracleUnavailable) {
		t.Fatalf("shared DistErr: err = %v, want ErrOracleUnavailable", err)
	}
	if c.OracleErr() == nil {
		t.Fatal("shared OracleErr not latched")
	}
	d, err := c.DistErr(2, 5)
	if err != nil || d != 3.0/8 {
		t.Fatalf("shared retry: (%v, %v), want (0.375, nil)", d, err)
	}
	if got := c.Stats().OracleCalls; got != 1 {
		t.Fatalf("OracleCalls = %d, want 1 (failure not counted)", got)
	}
}

func TestSharedSessionConcurrentFailuresStaySound(t *testing.T) {
	const n = 24
	fo := newScripted(n, 40) // first 40 backend calls fail
	c := Share(NewFallibleSession(fo, SchemeTri))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				j := (i + w + 1) % n
				if i == j {
					continue
				}
				d, err := c.DistErr(i, j)
				if err != nil {
					continue // failure is fine; wrong value is not
				}
				if want := (gridSpace{n: n}).Distance(i, j); d != want {
					t.Errorf("DistErr(%d,%d) = %v, want %v", i, j, d, want)
				}
			}
		}(w)
	}
	wg.Wait()
	// Every committed edge must be exact.
	g := c.s.Graph()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w, ok := g.Weight(i, j); ok {
				if want := (gridSpace{n: n}).Distance(i, j); w != want {
					t.Fatalf("graph edge (%d,%d) = %v, want %v", i, j, w, want)
				}
			}
		}
	}
}

func TestWithContextCancelsResolutions(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	fo := metric.NewOracle(gridSpace{n: 8})
	s := NewFallibleSession(fo, SchemeTri, WithContext(ctx))
	if _, err := s.DistErr(0, 3); err != nil {
		t.Fatalf("live context: %v", err)
	}
	cancel()
	_, err := s.DistErr(0, 5)
	if !errors.Is(err, ErrOracleUnavailable) || !errors.Is(err, context.Canceled) {
		t.Fatalf("dead context: err = %v, want ErrOracleUnavailable wrapping context.Canceled", err)
	}
}

// TestStoreFailureSurfacing exercises the cache-store failure path: a
// store whose file has been closed under the session keeps the session
// running, counts every failed append, latches StoreErr, and logs once.
func TestStoreFailureSurfacing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.mpx")
	store, err := cachestore.Create(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	var logs []string
	fo := metric.NewOracle(gridSpace{n: 8})
	s := NewFallibleSession(fo, SchemeTri, WithLogf(func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}))
	if err := s.AttachStore(store); err != nil {
		t.Fatal(err)
	}
	s.Dist(0, 1) // healthy append
	if st := s.Stats(); st.StoreErrors != 0 || s.StoreErr() != nil {
		t.Fatalf("healthy store reported errors: %+v, %v", st, s.StoreErr())
	}
	if err := store.Close(); err != nil { // the disk goes away
		t.Fatal(err)
	}
	d1 := s.Dist(0, 2)
	d2 := s.Dist(0, 3)
	if d1 != 2.0/8 || d2 != 3.0/8 {
		t.Fatalf("resolutions after store failure: %v, %v", d1, d2)
	}
	st := s.Stats()
	if st.StoreErrors != 2 {
		t.Fatalf("StoreErrors = %d, want 2", st.StoreErrors)
	}
	if s.StoreErr() == nil {
		t.Fatal("StoreErr not latched")
	}
	if len(logs) != 1 {
		t.Fatalf("store failure logged %d times, want exactly once: %q", len(logs), logs)
	}
	if !strings.Contains(logs[0], "cache store append failed") {
		t.Fatalf("unexpected log line: %q", logs[0])
	}
	if st.OracleCalls != 3 {
		t.Fatalf("OracleCalls = %d, want 3 (store failures must not cost calls)", st.OracleCalls)
	}
}
