package core

import "fmt"

// ParseScheme maps a scheme name — the same lowercase form Scheme.String
// returns — back to its Scheme value. It is the single parser behind every
// surface that accepts scheme names (metricprox and metricproxd flags, the
// service create-session request), so a scheme added to the enum shows up
// everywhere by updating the one table here.
func ParseScheme(name string) (Scheme, error) {
	sc, ok := map[string]Scheme{
		"noop": SchemeNoop, "tri": SchemeTri, "splub": SchemeSPLUB,
		"adm": SchemeADM, "laesa": SchemeLAESA, "tlaesa": SchemeTLAESA,
		"dft": SchemeDFT, "hybrid": SchemeHybrid,
	}[name]
	if !ok {
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
	return sc, nil
}
