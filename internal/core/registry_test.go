package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metricprox/internal/metric"
)

func registrySpace() metric.Space {
	return metric.NewVectors([][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}}, 2, 0.5)
}

func buildShared() (*SharedSession, any, error) {
	s := NewSession(metric.NewOracle(registrySpace()), SchemeTri)
	return Share(s), "payload", nil
}

func TestRegistryGetOrCreateSingleFlight(t *testing.T) {
	r := NewSessionRegistry(0, 0, nil)
	var builds atomic.Int64
	const workers = 16
	entries := make([]*SessionEntry, workers)
	createdCount := atomic.Int64{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e, created, err := r.GetOrCreate("shared", func() (*SharedSession, any, error) {
				builds.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the race window
				return buildShared()
			})
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			if created {
				createdCount.Add(1)
			}
			entries[w] = e
		}(w)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1 (single-flight)", got)
	}
	if got := createdCount.Load(); got != 1 {
		t.Fatalf("%d workers reported created=true, want 1", got)
	}
	for w := 1; w < workers; w++ {
		if entries[w] != entries[0] {
			t.Fatalf("worker %d got a different entry than worker 0", w)
		}
	}
	if entries[0].Data != "payload" {
		t.Fatalf("Data = %v, want payload", entries[0].Data)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestRegistryFailedBuildNotCached(t *testing.T) {
	r := NewSessionRegistry(0, 0, nil)
	boom := errors.New("bootstrap exploded")
	_, _, err := r.GetOrCreate("s", func() (*SharedSession, any, error) { return nil, nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if r.Len() != 0 {
		t.Fatalf("failed build left %d entries in the registry", r.Len())
	}
	// The next caller retries the build and can succeed.
	e, created, err := r.GetOrCreate("s", buildShared)
	if err != nil || !created || e == nil {
		t.Fatalf("retry after failed build: entry=%v created=%v err=%v", e, created, err)
	}
}

func TestRegistryMaxSessions(t *testing.T) {
	r := NewSessionRegistry(2, 0, nil)
	for _, name := range []string{"a", "b"} {
		if _, _, err := r.GetOrCreate(name, buildShared); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
	}
	_, _, err := r.GetOrCreate("c", buildShared)
	if !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("third session err = %v, want ErrTooManySessions", err)
	}
	// Attaching to an existing session is still fine at the cap.
	if _, created, err := r.GetOrCreate("a", buildShared); err != nil || created {
		t.Fatalf("attach at cap: created=%v err=%v", created, err)
	}
	// Evicting frees a slot.
	if !r.Evict("b") {
		t.Fatal("Evict(b) = false")
	}
	if _, _, err := r.GetOrCreate("c", buildShared); err != nil {
		t.Fatalf("create after evict: %v", err)
	}
}

func TestRegistryTTLSweep(t *testing.T) {
	clock := time.Unix(5000, 0)
	var evicted []string
	r := NewSessionRegistry(0, time.Minute, func(e *SessionEntry) { evicted = append(evicted, e.Name) })
	r.now = func() time.Time { return clock }

	if _, _, err := r.GetOrCreate("old", buildShared); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(45 * time.Second)
	if _, _, err := r.GetOrCreate("young", buildShared); err != nil {
		t.Fatal(err)
	}
	// "old" is 45s idle, "young" fresh: nothing to sweep yet.
	if names := r.Sweep(); len(names) != 0 {
		t.Fatalf("premature sweep evicted %v", names)
	}
	// Touching "old" resets its idle clock.
	if r.Get("old") == nil {
		t.Fatal("Get(old) = nil")
	}
	clock = clock.Add(50 * time.Second)
	// Now "young" is 50s idle, "old" 50s idle too (touched) — still under.
	if names := r.Sweep(); len(names) != 0 {
		t.Fatalf("sweep at 50s idle evicted %v", names)
	}
	clock = clock.Add(15 * time.Second)
	names := r.Sweep()
	if len(names) != 2 {
		t.Fatalf("sweep evicted %v, want both sessions", names)
	}
	if len(evicted) != 2 {
		t.Fatalf("onEvict ran for %v, want both", evicted)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after sweep = %d", r.Len())
	}
}

func TestRegistryClearRunsOnEvict(t *testing.T) {
	var mu sync.Mutex
	var evicted []string
	r := NewSessionRegistry(0, 0, func(e *SessionEntry) {
		mu.Lock()
		evicted = append(evicted, e.Name)
		mu.Unlock()
	})
	for _, name := range []string{"a", "b", "c"} {
		if _, _, err := r.GetOrCreate(name, buildShared); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Clear(); got != 3 {
		t.Fatalf("Clear = %d, want 3", got)
	}
	if len(evicted) != 3 {
		t.Fatalf("onEvict ran for %v, want 3 entries", evicted)
	}
	if got := r.Names(); len(got) != 0 {
		t.Fatalf("Names after Clear = %v", got)
	}
}

func TestRegistryGetDoesNotBlockOnPendingBuild(t *testing.T) {
	r := NewSessionRegistry(0, 0, nil)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.GetOrCreate("slow", func() (*SharedSession, any, error) {
			<-release
			return buildShared()
		})
	}()
	// Wait until the pending entry is registered.
	for r.Len() == 0 {
		time.Sleep(time.Millisecond)
	}
	if e := r.Get("slow"); e != nil {
		t.Fatalf("Get returned a half-built entry: %v", e)
	}
	if names := r.Names(); len(names) != 0 {
		t.Fatalf("Names lists a pending build: %v", names)
	}
	if r.Evict("slow") {
		t.Fatal("Evict removed a pending build")
	}
	close(release)
	<-done
	if e := r.Get("slow"); e == nil {
		t.Fatal("Get = nil after build completed")
	}
}
