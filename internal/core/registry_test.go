package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metricprox/internal/metric"
)

func registrySpace() metric.Space {
	return metric.NewVectors([][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}}, 2, 0.5)
}

func buildShared() (*SharedSession, any, error) {
	s := NewSession(metric.NewOracle(registrySpace()), SchemeTri)
	return Share(s), "payload", nil
}

func TestRegistryGetOrCreateSingleFlight(t *testing.T) {
	r := NewSessionRegistry(0, 0, nil)
	var builds atomic.Int64
	const workers = 16
	entries := make([]*SessionEntry, workers)
	createdCount := atomic.Int64{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e, created, err := r.GetOrCreate("shared", func() (*SharedSession, any, error) {
				builds.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the race window
				return buildShared()
			})
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			if created {
				createdCount.Add(1)
			}
			entries[w] = e
		}(w)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1 (single-flight)", got)
	}
	if got := createdCount.Load(); got != 1 {
		t.Fatalf("%d workers reported created=true, want 1", got)
	}
	for w := 1; w < workers; w++ {
		if entries[w] != entries[0] {
			t.Fatalf("worker %d got a different entry than worker 0", w)
		}
	}
	if entries[0].Data != "payload" {
		t.Fatalf("Data = %v, want payload", entries[0].Data)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestRegistryFailedBuildNotCached(t *testing.T) {
	r := NewSessionRegistry(0, 0, nil)
	boom := errors.New("bootstrap exploded")
	_, _, err := r.GetOrCreate("s", func() (*SharedSession, any, error) { return nil, nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if r.Len() != 0 {
		t.Fatalf("failed build left %d entries in the registry", r.Len())
	}
	// The next caller retries the build and can succeed.
	e, created, err := r.GetOrCreate("s", buildShared)
	if err != nil || !created || e == nil {
		t.Fatalf("retry after failed build: entry=%v created=%v err=%v", e, created, err)
	}
}

func TestRegistryMaxSessions(t *testing.T) {
	r := NewSessionRegistry(2, 0, nil)
	for _, name := range []string{"a", "b"} {
		if _, _, err := r.GetOrCreate(name, buildShared); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
	}
	_, _, err := r.GetOrCreate("c", buildShared)
	if !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("third session err = %v, want ErrTooManySessions", err)
	}
	// Attaching to an existing session is still fine at the cap.
	if _, created, err := r.GetOrCreate("a", buildShared); err != nil || created {
		t.Fatalf("attach at cap: created=%v err=%v", created, err)
	}
	// Evicting frees a slot.
	if !r.Evict("b") {
		t.Fatal("Evict(b) = false")
	}
	if _, _, err := r.GetOrCreate("c", buildShared); err != nil {
		t.Fatalf("create after evict: %v", err)
	}
}

func TestRegistryTTLSweep(t *testing.T) {
	clock := time.Unix(5000, 0)
	var evicted []string
	r := NewSessionRegistry(0, time.Minute, func(e *SessionEntry) { evicted = append(evicted, e.Name) })
	r.now = func() time.Time { return clock }

	if _, _, err := r.GetOrCreate("old", buildShared); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(45 * time.Second)
	if _, _, err := r.GetOrCreate("young", buildShared); err != nil {
		t.Fatal(err)
	}
	// "old" is 45s idle, "young" fresh: nothing to sweep yet.
	if names := r.Sweep(); len(names) != 0 {
		t.Fatalf("premature sweep evicted %v", names)
	}
	// Touching "old" resets its idle clock.
	if r.Get("old") == nil {
		t.Fatal("Get(old) = nil")
	}
	clock = clock.Add(50 * time.Second)
	// Now "young" is 50s idle, "old" 50s idle too (touched) — still under.
	if names := r.Sweep(); len(names) != 0 {
		t.Fatalf("sweep at 50s idle evicted %v", names)
	}
	clock = clock.Add(15 * time.Second)
	names := r.Sweep()
	if len(names) != 2 {
		t.Fatalf("sweep evicted %v, want both sessions", names)
	}
	if len(evicted) != 2 {
		t.Fatalf("onEvict ran for %v, want both", evicted)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after sweep = %d", r.Len())
	}
}

func TestRegistryClearRunsOnEvict(t *testing.T) {
	var mu sync.Mutex
	var evicted []string
	r := NewSessionRegistry(0, 0, func(e *SessionEntry) {
		mu.Lock()
		evicted = append(evicted, e.Name)
		mu.Unlock()
	})
	for _, name := range []string{"a", "b", "c"} {
		if _, _, err := r.GetOrCreate(name, buildShared); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Clear(); got != 3 {
		t.Fatalf("Clear = %d, want 3", got)
	}
	if len(evicted) != 3 {
		t.Fatalf("onEvict ran for %v, want 3 entries", evicted)
	}
	if got := r.Names(); len(got) != 0 {
		t.Fatalf("Names after Clear = %v", got)
	}
}

func TestRegistryGetDoesNotBlockOnPendingBuild(t *testing.T) {
	r := NewSessionRegistry(0, 0, nil)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.GetOrCreate("slow", func() (*SharedSession, any, error) {
			<-release
			return buildShared()
		})
	}()
	// Wait until the pending entry is registered.
	for r.Len() == 0 {
		time.Sleep(time.Millisecond)
	}
	if e := r.Get("slow"); e != nil {
		t.Fatalf("Get returned a half-built entry: %v", e)
	}
	if names := r.Names(); len(names) != 0 {
		t.Fatalf("Names lists a pending build: %v", names)
	}
	if r.Evict("slow") {
		t.Fatal("Evict removed a pending build")
	}
	close(release)
	<-done
	if e := r.Get("slow"); e == nil {
		t.Fatal("Get = nil after build completed")
	}
}

func TestRegistryAcquireBlocksSweep(t *testing.T) {
	// Regression test for the TTL-sweeper vs drain-era handler race: a
	// handler that acquired a session must keep it alive — and its onEvict
	// hook unrun — no matter how stale its idle clock looks to the sweeper.
	clock := time.Unix(9000, 0)
	var evicted []string
	r := NewSessionRegistry(0, time.Minute, func(e *SessionEntry) { evicted = append(evicted, e.Name) })
	r.now = func() time.Time { return clock }

	if _, _, err := r.GetOrCreate("held", buildShared); err != nil {
		t.Fatal(err)
	}
	e := r.Acquire("held")
	if e == nil {
		t.Fatal("Acquire(held) = nil")
	}
	// Way past the TTL while the handler still holds the entry.
	clock = clock.Add(time.Hour)
	if names := r.Sweep(); len(names) != 0 {
		t.Fatalf("sweep evicted in-use session %v", names)
	}
	if len(evicted) != 0 {
		t.Fatalf("onEvict ran for in-use session: %v", evicted)
	}
	// Release touches the idle clock, so the session is fresh again.
	r.Release(e)
	if names := r.Sweep(); len(names) != 0 {
		t.Fatalf("sweep evicted freshly-released session %v", names)
	}
	// Only once it has truly idled out does the sweeper take it.
	clock = clock.Add(2 * time.Minute)
	if names := r.Sweep(); len(names) != 1 || names[0] != "held" {
		t.Fatalf("sweep after release = %v, want [held]", names)
	}
	if len(evicted) != 1 {
		t.Fatalf("onEvict ran %d times, want 1", len(evicted))
	}
}

func TestRegistryEvictWhileHeldDefersHook(t *testing.T) {
	var evicted []string
	r := NewSessionRegistry(0, 0, func(e *SessionEntry) { evicted = append(evicted, e.Name) })
	if _, _, err := r.GetOrCreate("s", buildShared); err != nil {
		t.Fatal(err)
	}
	e1 := r.Acquire("s")
	e2 := r.Acquire("s")
	if e1 == nil || e2 == nil {
		t.Fatal("Acquire returned nil")
	}
	// Explicit DELETE while two handlers are in flight: the name leaves
	// the registry at once, the hook waits for the last holder.
	if !r.Evict("s") {
		t.Fatal("Evict(s) = false")
	}
	if r.Get("s") != nil {
		t.Fatal("evicted session still visible")
	}
	if len(evicted) != 0 {
		t.Fatalf("onEvict ran with holders in flight: %v", evicted)
	}
	r.Release(e1)
	if len(evicted) != 0 {
		t.Fatalf("onEvict ran before last release: %v", evicted)
	}
	r.Release(e2)
	if len(evicted) != 1 || evicted[0] != "s" {
		t.Fatalf("onEvict after last release = %v, want [s]", evicted)
	}
	// The name is free for a new generation; releasing the old entry again
	// must not touch the newcomer.
	if _, _, err := r.GetOrCreate("s", buildShared); err != nil {
		t.Fatal(err)
	}
	r.Release(e1) // stale release of the dead generation: no-op
	if r.Get("s") == nil {
		t.Fatal("stale Release damaged the new generation")
	}
	if len(evicted) != 1 {
		t.Fatalf("stale Release re-ran onEvict: %v", evicted)
	}
}

func TestRegistryClearDefersHookForHeldEntries(t *testing.T) {
	var mu sync.Mutex
	var evicted []string
	r := NewSessionRegistry(0, 0, func(e *SessionEntry) {
		mu.Lock()
		evicted = append(evicted, e.Name)
		mu.Unlock()
	})
	for _, name := range []string{"a", "b"} {
		if _, _, err := r.GetOrCreate(name, buildShared); err != nil {
			t.Fatal(err)
		}
	}
	e := r.Acquire("a")
	if got := r.Clear(); got != 2 {
		t.Fatalf("Clear = %d, want 2", got)
	}
	mu.Lock()
	n := len(evicted)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("onEvict ran %d times during Clear with one entry held, want 1", n)
	}
	r.Release(e)
	mu.Lock()
	defer mu.Unlock()
	if len(evicted) != 2 {
		t.Fatalf("onEvict total after release = %d, want 2", len(evicted))
	}
}
