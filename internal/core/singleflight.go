package core

// flight is one in-progress oracle resolution. The first goroutine that
// needs an unresolved pair registers a flight under the SharedSession
// lock, performs the oracle round-trip with the lock released, publishes
// the result, and closes done. Every other goroutine that needs the same
// pair while the call is outstanding blocks on done instead of issuing a
// duplicate oracle call — the single-flight guarantee.
type flight struct {
	done chan struct{}
	// d is written exactly once, before done is closed; the channel close
	// is the happens-before edge that makes the read in waiters safe.
	d float64
}

func newFlight() *flight { return &flight{done: make(chan struct{})} }

// finish publishes the resolved distance and releases all waiters.
func (f *flight) finish(d float64) {
	f.d = d
	close(f.done)
}

// wait blocks until the resolution lands and returns it.
func (f *flight) wait() float64 {
	<-f.done
	return f.d
}
