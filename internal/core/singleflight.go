package core

// flight is one in-progress oracle resolution. The first goroutine that
// needs an unresolved pair registers a flight under the SharedSession
// lock, performs the oracle round-trip with the lock released, publishes
// the result, and closes done. Every other goroutine that needs the same
// pair while the call is outstanding blocks on done instead of issuing a
// duplicate oracle call — the single-flight guarantee.
type flight struct {
	done chan struct{}
	// d and err are written exactly once, before done is closed; the
	// channel close is the happens-before edge that makes the reads in
	// waiters safe. A failed flight shares its error with every waiter —
	// the attempt is shared, success or not — but commits nothing, so a
	// later call for the same pair starts a fresh flight.
	d   float64
	err error
}

func newFlight() *flight { return &flight{done: make(chan struct{})} }

// finish publishes the resolution (or its failure) and releases all
// waiters.
func (f *flight) finish(d float64, err error) {
	f.d, f.err = d, err
	close(f.done)
}

// wait blocks until the resolution lands and returns it.
func (f *flight) wait() (float64, error) {
	<-f.done
	return f.d, f.err
}
