// Package core implements the paper's primary contribution: a unified,
// output-preserving framework that lets any proximity algorithm resolve its
// distance-comparing IF statements against triangle-inequality bounds
// before paying for a distance-oracle call.
//
// The practitioner's recipe (Sections 2–4 of the paper):
//
//  1. Wrap the expensive distance function in a Session.
//  2. Re-author each IF of the form `if dist(a,b) < dist(c,d)` as a call to
//     Session.Less (or LessThan / DistIfLess when the branch needs the
//     actual value).
//  3. Pick a bound scheme: Tri for scale, SPLUB for tightest graph bounds,
//     DFT for maximum savings on tiny inputs, or a baseline for comparison.
//  4. Optionally Bootstrap with LAESA-style landmarks.
//
// The framework guarantees the re-authored algorithm computes *exactly*
// the answers of the original: a comparison is only short-circuited when
// the triangle inequality makes its outcome certain.
package core

import (
	"fmt"
	"math/rand"

	"metricprox/internal/bounds"
	"metricprox/internal/cachestore"
	"metricprox/internal/metric"
	"metricprox/internal/pgraph"
)

// Stats aggregates the instrumentation of a Session. OracleCalls is the
// paper's primary cost metric; SavedComparisons counts IF statements
// resolved from bounds alone.
type Stats struct {
	// OracleCalls is the number of distances resolved through the oracle
	// by this session (bootstrap included).
	OracleCalls int64
	// BootstrapCalls is the subset of OracleCalls spent on landmark
	// bootstrap (the Bootstrap column of Tables 2–3).
	BootstrapCalls int64
	// BoundProbes counts Bounds() evaluations performed for comparisons.
	BoundProbes int64
	// SavedComparisons counts comparisons decided without any oracle call.
	SavedComparisons int64
	// ResolvedComparisons counts comparisons that needed the oracle.
	ResolvedComparisons int64
	// CacheHits counts comparisons answered from already-resolved pairs.
	CacheHits int64
}

// Session mediates every distance access of a proximity algorithm. It
// memoises resolved distances in a partial graph, consults a pluggable
// Bounder (and optionally a Comparator such as DFT) to short-circuit
// comparisons, and records statistics.
//
// A Session is not safe for concurrent use; run one per goroutine over the
// same Oracle if parallel workloads are needed.
type Session struct {
	oracle  *metric.Oracle
	g       *pgraph.Graph
	b       bounds.Bounder
	cmp     bounds.Comparator
	maxDist float64
	rho     float64 // relaxation factor; 0 or 1 = true metric
	stats   Stats

	// sharesGraph records whether b reads s.g directly (SPLUB/Tri), in
	// which case AddEdge already updated it and Update must not be
	// re-invoked with a duplicate.
	sharesGraph bool

	// store, when attached, persists resolutions across runs.
	store    *cachestore.Store
	storeErr error
}

// Option configures a Session.
type Option func(*Session)

// WithMaxDistance sets the a-priori cap on any distance (default 1, the
// paper's normalised setting).
func WithMaxDistance(d float64) Option {
	return func(s *Session) { s.maxDist = d }
}

// WithComparator installs a direct comparator (DFT) that is consulted when
// interval bounds are inconclusive.
func WithComparator(c bounds.Comparator) Option {
	return func(s *Session) { s.cmp = c }
}

// WithRelaxation declares the oracle a ρ-relaxed metric (d(x,z) ≤
// ρ·(d(x,y)+d(y,z)), e.g. squared Euclidean with ρ = 2 — see
// metric.Power). Only SchemeNoop and SchemeTri support ρ > 1; the other
// schemes' soundness arguments assume a true metric and NewSession panics
// if they are combined with a relaxation.
func WithRelaxation(rho float64) Option {
	if rho < 1 {
		panic("core: relaxation factor must be at least 1")
	}
	return func(s *Session) { s.rho = rho }
}

// Scheme selects a bound scheme for NewSession.
type Scheme int

// The available schemes. SchemeNoop recovers the unmodified algorithm.
const (
	SchemeNoop Scheme = iota
	SchemeSPLUB
	SchemeTri
	SchemeADM
	SchemeLAESA
	SchemeTLAESA
	SchemeDFT
	// SchemeHybrid asks Tri first and escalates to SPLUB only when the
	// triangle interval is loose (DESIGN.md §6 ablation).
	SchemeHybrid
)

// String returns the scheme name used in experiment reports.
func (sc Scheme) String() string {
	switch sc {
	case SchemeNoop:
		return "noop"
	case SchemeSPLUB:
		return "splub"
	case SchemeTri:
		return "tri"
	case SchemeADM:
		return "adm"
	case SchemeLAESA:
		return "laesa"
	case SchemeTLAESA:
		return "tlaesa"
	case SchemeDFT:
		return "dft"
	case SchemeHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("scheme(%d)", int(sc))
	}
}

// NewSession builds a Session over the oracle with the given scheme.
// Landmark schemes (LAESA/TLAESA) require a prior choice of landmarks; use
// NewSessionWithLandmarks for those, or Bootstrap afterwards.
func NewSession(oracle *metric.Oracle, scheme Scheme, opts ...Option) *Session {
	return NewSessionWithLandmarks(oracle, scheme, nil, opts...)
}

// NewSessionWithLandmarks builds a Session whose landmark-based schemes use
// the given landmark set. For non-landmark schemes the set is ignored by
// the bounder but still usable via Bootstrap.
func NewSessionWithLandmarks(oracle *metric.Oracle, scheme Scheme, landmarks []int, opts ...Option) *Session {
	n := oracle.Len()
	s := &Session{
		oracle:  oracle,
		g:       pgraph.New(n),
		maxDist: 1,
	}
	for _, o := range opts {
		o(s)
	}
	if s.rho > 1 && scheme != SchemeNoop && scheme != SchemeTri {
		panic(fmt.Sprintf("core: scheme %v does not support relaxed metrics", scheme))
	}
	switch scheme {
	case SchemeNoop:
		s.b = bounds.NewNoop(s.maxDist)
	case SchemeSPLUB:
		s.b = bounds.NewSPLUB(s.g, s.maxDist)
		s.sharesGraph = true
	case SchemeTri:
		rho := s.rho
		if rho < 1 {
			rho = 1
		}
		s.b = bounds.NewTriRelaxed(s.g, s.maxDist, rho)
		s.sharesGraph = true
	case SchemeADM:
		s.b = bounds.NewADM(n, s.maxDist)
	case SchemeLAESA:
		s.b = bounds.NewLAESA(n, landmarks, s.maxDist)
	case SchemeTLAESA:
		s.b = bounds.NewTLAESA(n, landmarks, s.maxDist)
	case SchemeDFT:
		dft := bounds.NewDFT(n, s.maxDist)
		s.b = dft
		if s.cmp == nil {
			s.cmp = dft
		}
	case SchemeHybrid:
		// Both sides read the shared session graph; escalate when the
		// triangle interval is wider than 10% of the distance cap.
		s.b = bounds.NewHybrid(
			bounds.NewTri(s.g, s.maxDist),
			bounds.NewSPLUB(s.g, s.maxDist),
			s.maxDist/10,
		)
		s.sharesGraph = true
	default:
		panic(fmt.Sprintf("core: unknown scheme %v", scheme))
	}
	return s
}

// N returns the number of objects.
func (s *Session) N() int { return s.g.N() }

// Stats returns a copy of the session statistics.
func (s *Session) Stats() Stats { return s.stats }

// Graph exposes the partial graph of resolved distances (read-only use).
func (s *Session) Graph() *pgraph.Graph { return s.g }

// Bounder returns the active bound scheme.
func (s *Session) Bounder() bounds.Bounder { return s.b }

// MaxDistance returns the configured distance cap.
func (s *Session) MaxDistance() float64 { return s.maxDist }

// Known reports whether the pair is already resolved, without any oracle
// call.
func (s *Session) Known(i, j int) (float64, bool) { return s.g.Weight(i, j) }

// Dist returns the exact distance between i and j, calling the oracle only
// if the pair has not been resolved before. The resolution is fed to the
// bound scheme (the UPDATE PROBLEM).
func (s *Session) Dist(i, j int) float64 {
	if i == j {
		return 0
	}
	if w, ok := s.g.Weight(i, j); ok {
		return w
	}
	d := s.oracleDistance(i, j)
	s.commitResolution(i, j, d)
	return d
}

// oracleDistance performs the raw oracle round-trip with no bookkeeping.
// It is the only Session path that touches the oracle, split from
// commitResolution so SharedSession can release its lock around the call.
func (s *Session) oracleDistance(i, j int) float64 {
	return s.oracle.Distance(i, j)
}

// commitResolution records a freshly resolved distance: statistics, the
// partial graph, the bound scheme, and the attached store. Callers must
// ensure the pair is not already recorded (pgraph panics on conflicting
// weights, and a duplicate would double-count OracleCalls).
func (s *Session) commitResolution(i, j int, d float64) {
	s.stats.OracleCalls++
	s.record(i, j, d)
	s.persistResolution(i, j, d)
}

func (s *Session) record(i, j int, d float64) {
	if s.sharesGraph {
		// SPLUB/Tri read the session graph; a single AddEdge serves both.
		s.g.AddEdge(i, j, d)
		return
	}
	s.g.AddEdge(i, j, d)
	s.b.Update(i, j, d)
}

// Bounds returns the current lower and upper bounds for (i, j) without any
// oracle call. Resolved pairs return the exact value twice.
func (s *Session) Bounds(i, j int) (lb, ub float64) {
	if i == j {
		return 0, 0
	}
	if w, ok := s.g.Weight(i, j); ok {
		return w, w
	}
	s.stats.BoundProbes++
	return s.b.Bounds(i, j)
}

// Less reports whether dist(i,j) < dist(k,l) — the paper's canonical IF
// statement — resolving distances only when the bound scheme (and
// comparator, if any) cannot decide.
func (s *Session) Less(i, j, k, l int) bool {
	if r, decided := s.decideLess(i, j, k, l); decided {
		return r
	}
	return s.Dist(i, j) < s.Dist(k, l)
}

// decideLess attempts to settle dist(i,j) < dist(k,l) from cached
// distances, interval bounds, and the comparator alone, updating
// statistics. decided=false means the caller must resolve both distances
// and compare; ResolvedComparisons has already been counted in that case.
// This is the bookkeeping half of Less, callable under SharedSession's
// lock because it never touches the oracle.
func (s *Session) decideLess(i, j, k, l int) (result, decided bool) {
	kn1, ok1 := s.Known(i, j)
	kn2, ok2 := s.Known(k, l)
	if ok1 && ok2 {
		s.stats.CacheHits++
		return kn1 < kn2, true
	}
	lb1, ub1 := s.Bounds(i, j)
	lb2, ub2 := s.Bounds(k, l)
	if ub1 < lb2 {
		s.stats.SavedComparisons++
		return true, true
	}
	if lb1 >= ub2 {
		s.stats.SavedComparisons++
		return false, true
	}
	if s.cmp != nil {
		if s.cmp.ProveLess(i, j, k, l) {
			s.stats.SavedComparisons++
			return true, true
		}
		if s.cmp.ProveLess(k, l, i, j) {
			// dist(k,l) < dist(i,j) implies not less.
			s.stats.SavedComparisons++
			return false, true
		}
	}
	s.stats.ResolvedComparisons++
	return false, false
}

// LessThan reports whether dist(i,j) < c, resolving the distance only when
// the bounds are inconclusive.
func (s *Session) LessThan(i, j int, c float64) bool {
	if r, decided := s.decideLessThan(i, j, c); decided {
		return r
	}
	return s.Dist(i, j) < c
}

// decideLessThan is the bookkeeping half of LessThan; see decideLess.
func (s *Session) decideLessThan(i, j int, c float64) (result, decided bool) {
	if w, ok := s.Known(i, j); ok {
		s.stats.CacheHits++
		return w < c, true
	}
	lb, ub := s.Bounds(i, j)
	if ub < c {
		s.stats.SavedComparisons++
		return true, true
	}
	if lb >= c {
		s.stats.SavedComparisons++
		return false, true
	}
	if s.cmp != nil {
		if s.cmp.ProveLessC(i, j, c) {
			s.stats.SavedComparisons++
			return true, true
		}
		if s.cmp.ProveGEC(i, j, c) {
			s.stats.SavedComparisons++
			return false, true
		}
	}
	s.stats.ResolvedComparisons++
	return false, false
}

// DistIfLess is the value-needed variant of LessThan used by algorithms
// that must store the distance when the comparison succeeds (Prim's key
// update, PAM's nearest-medoid assignment). If dist(i,j) ≥ c can be proven
// from bounds, it returns (0, false) with no oracle call; otherwise it
// resolves the distance and reports whether it is below c.
func (s *Session) DistIfLess(i, j int, c float64) (float64, bool) {
	if d, less, decided := s.decideDistIfLess(i, j, c); decided {
		return d, less
	}
	d := s.Dist(i, j)
	return d, d < c
}

// decideDistIfLess is the bookkeeping half of DistIfLess; see decideLess.
func (s *Session) decideDistIfLess(i, j int, c float64) (d float64, less, decided bool) {
	if w, ok := s.Known(i, j); ok {
		s.stats.CacheHits++
		return w, w < c, true
	}
	lb, _ := s.Bounds(i, j)
	if lb >= c {
		s.stats.SavedComparisons++
		return 0, false, true
	}
	if s.cmp != nil && s.cmp.ProveGEC(i, j, c) {
		s.stats.SavedComparisons++
		return 0, false, true
	}
	s.stats.ResolvedComparisons++
	return 0, false, false
}

// Bootstrap resolves all landmark-to-object distances through the oracle
// (feeding the bound scheme) and returns the number of calls spent — the
// Bootstrap column of the paper's tables. The same routine initialises the
// baselines (LAESA/TLAESA) and the bootstrapped Tri Scheme.
func (s *Session) Bootstrap(landmarks []int) int64 {
	before := s.stats.OracleCalls
	if b, ok := s.b.(bounds.Bootstrapper); ok {
		b.Bootstrap(s.Dist, landmarks)
	} else {
		for _, e := range bounds.EdgesForBootstrap(s.N(), landmarks) {
			s.Dist(e.U, e.V)
		}
	}
	spent := s.stats.OracleCalls - before
	s.stats.BootstrapCalls += spent
	return spent
}

// PickLandmarks selects k well-separated landmarks with the classic greedy
// max-min rule used by LAESA's base-prototype selection, spending (k−1)·n
// oracle-call-free selections: the first landmark is arbitrary and
// subsequent ones maximise the minimum distance to those already chosen,
// using distances that Bootstrap will resolve anyway. To avoid spending
// extra calls before bootstrap, the greedy selection runs on a cheap
// surrogate: a deterministic pseudo-random spread seeded by seed.
//
// The paper treats landmark choice as an input (and shows in Figure 5b
// that no universally good count exists); this helper simply provides a
// reproducible default.
func PickLandmarks(n, k int, seed int64) []int {
	if k >= n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	return perm[:k]
}

// GreedyLandmarks picks k landmarks with the true LAESA max-min rule,
// spending oracle calls ((k−1)·n in the worst case) through the session so
// the resolved rows double as bootstrap. It returns the landmark set; the
// calls it makes are indistinguishable from Bootstrap calls in the stats.
func (s *Session) GreedyLandmarks(k int) []int {
	n := s.N()
	if k >= n {
		k = n
	}
	before := s.stats.OracleCalls
	landmarks := make([]int, 0, k)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = s.maxDist * 2
	}
	// selected[x] replaces a linear scan of the landmark slice inside the
	// selection loop, turning the selection from O(n·k²) into O(n·k).
	selected := make([]bool, n)
	cur := 0 // arbitrary first landmark
	landmarks = append(landmarks, cur)
	selected[cur] = true
	for len(landmarks) < k {
		far, farD := -1, -1.0
		for x := 0; x < n; x++ {
			if x == cur {
				minDist[x] = 0
				continue
			}
			if d := s.Dist(cur, x); d < minDist[x] {
				minDist[x] = d
			}
			if minDist[x] > farD && !selected[x] {
				far, farD = x, minDist[x]
			}
		}
		landmarks = append(landmarks, far)
		selected[far] = true
		cur = far
	}
	// Finish the final landmark's row so the bootstrap is complete.
	for x := 0; x < n; x++ {
		if x != cur {
			s.Dist(cur, x)
		}
	}
	s.stats.BootstrapCalls += s.stats.OracleCalls - before
	return landmarks
}
