// Package core implements the paper's primary contribution: a unified,
// output-preserving framework that lets any proximity algorithm resolve its
// distance-comparing IF statements against triangle-inequality bounds
// before paying for a distance-oracle call.
//
// The practitioner's recipe (Sections 2–4 of the paper):
//
//  1. Wrap the expensive distance function in a Session.
//  2. Re-author each IF of the form `if dist(a,b) < dist(c,d)` as a call to
//     Session.Less (or LessThan / DistIfLess when the branch needs the
//     actual value).
//  3. Pick a bound scheme: Tri for scale, SPLUB for tightest graph bounds,
//     DFT for maximum savings on tiny inputs, or a baseline for comparison.
//  4. Optionally Bootstrap with LAESA-style landmarks.
//
// The framework guarantees the re-authored algorithm computes *exactly*
// the answers of the original: a comparison is only short-circuited when
// the triangle inequality makes its outcome certain.
package core

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"metricprox/internal/bounds"
	"metricprox/internal/cachestore"
	"metricprox/internal/metric"
	"metricprox/internal/obs"
	"metricprox/internal/pgraph"
)

// Stats is a point-in-time snapshot of a Session's instrumentation.
// OracleCalls is the paper's primary cost metric; SavedComparisons counts
// IF statements resolved from bounds alone. The live counters behind a
// snapshot are obs instruments (see internal/obs and WithObserver); Stats
// remains the stable reporting surface experiments and CLIs consume.
type Stats struct {
	// OracleCalls is the number of distances resolved through the oracle
	// by this session (bootstrap included).
	OracleCalls int64
	// BootstrapCalls is the subset of OracleCalls spent on landmark
	// bootstrap (the Bootstrap column of Tables 2–3).
	BootstrapCalls int64
	// BoundProbes counts Bounds() evaluations performed for comparisons.
	BoundProbes int64
	// SavedComparisons counts comparisons decided without any oracle call.
	SavedComparisons int64
	// ResolvedComparisons counts comparisons that needed the oracle.
	ResolvedComparisons int64
	// CacheHits counts comparisons answered from already-resolved pairs.
	CacheHits int64

	// --- failure-model counters (see DESIGN.md §7) ---

	// Retries counts failed oracle attempts that were retried by the
	// resilient policy layer (0 for infallible in-process oracles).
	Retries int64
	// Timeouts counts oracle attempts that hit a context deadline.
	Timeouts int64
	// BreakerOpens counts circuit-breaker closed/half-open → open
	// transitions in the policy layer.
	BreakerOpens int64
	// DegradedAnswers counts answers produced while the oracle was
	// unavailable: comparisons settled from bounds alone with the breaker
	// open (still exact — bounds are sound) plus best-effort estimates
	// returned by the legacy infallible methods after a failed resolution
	// (not exact; the session's OracleErr is set alongside).
	DegradedAnswers int64
	// StoreErrors counts failed appends to the attached persistent cache
	// (the resolutions stay in memory; only the on-disk cache is short).
	StoreErrors int64

	// --- near-metric counters (see DESIGN.md §12) ---

	// SlackResolved counts comparisons settled from bound intervals that
	// were widened by an active SlackPolicy — a subset of
	// SavedComparisons, exact under the declared near-metric contract
	// rather than unconditionally.
	SlackResolved int64
	// Violations counts triangle-inequality violations the attached
	// auditor observed among resolved distances (0 when no auditor).
	Violations int64
}

// Session mediates every distance access of a proximity algorithm. It
// memoises resolved distances in a partial graph, consults a pluggable
// Bounder (and optionally a Comparator such as DFT) to short-circuit
// comparisons, and records statistics.
//
// A Session is not safe for concurrent use; run one per goroutine over the
// same Oracle if parallel workloads are needed.
type Session struct {
	fo      metric.FallibleOracle
	g       *pgraph.Graph
	b       bounds.Bounder
	cmp     bounds.Comparator
	maxDist float64
	rho     float64 // relaxation factor; 0 or 1 = true metric

	// ins holds the metric instrument handles every counter of this
	// session records into (the replacement for the ad-hoc Stats counter
	// fields). Handles are resolved once here; each recording is a
	// single atomic operation, so SharedSession's unlocked paths may
	// bump them too.
	ins *obs.SessionInstruments

	// tr, when non-nil (observer attached), receives one obs.Event per
	// comparison. The tracer is internally synchronised.
	tr *obs.Tracer

	// timed enables oracle-latency timing into ins.OracleLatency; set
	// only when an observer is attached so unobserved sessions pay no
	// clock reads on the hot path.
	timed bool

	// phase distinguishes bootstrap-phase oracle calls from run-phase
	// ones for the phase-labelled call counters and trace events.
	// Atomic because SharedSession wrappers read it without the lock.
	phase atomic.Int32 // phaseRun | phaseBootstrap

	// schemeName labels this session's instruments and trace events.
	schemeName string

	// observer, when set by WithObserver, supplies the shared registry
	// and optional tracer this session reports into.
	observer *obs.Observer

	// baseCtx bounds every oracle round-trip this session makes
	// (per-attempt deadlines are the resilient layer's job).
	baseCtx context.Context

	// ready, when non-nil, reports whether the fallible oracle is
	// currently willing to attempt backend calls (circuit breaker not
	// open); bounds-only answers given while !ready() are counted as
	// DegradedAnswers.
	ready func() bool

	// oracleErr latches the first failed resolution (see OracleErr): once
	// set, answers produced by the legacy infallible methods may be
	// best-effort estimates rather than exact.
	oracleErr error

	// sharesGraph records whether b reads s.g directly (SPLUB/Tri), in
	// which case AddEdge already updated it and Update must not be
	// re-invoked with a duplicate.
	sharesGraph bool

	// store, when attached, persists resolutions across runs.
	store    *cachestore.Store
	storeErr error
	logf     func(format string, args ...any)

	// slack, when active, declares the oracle a near-metric and widens
	// every derived bound interval accordingly (see SlackPolicy and
	// DESIGN.md §12).
	slack SlackPolicy

	// auditor, when attached, checks every resolution against the
	// triangles it closes on the known-edge graph and feeds Auto slack.
	auditor *metric.Auditor
}

// Option configures a Session.
type Option func(*Session)

// WithMaxDistance sets the a-priori cap on any distance (default 1, the
// paper's normalised setting).
func WithMaxDistance(d float64) Option {
	return func(s *Session) { s.maxDist = d }
}

// WithComparator installs a direct comparator (DFT) that is consulted when
// interval bounds are inconclusive.
func WithComparator(c bounds.Comparator) Option {
	return func(s *Session) { s.cmp = c }
}

// WithContext bounds every oracle round-trip of the session with ctx: a
// cancelled or expired ctx makes further resolutions fail with the
// context's error (wrapped in ErrOracleUnavailable). The default is
// context.Background(). Per-attempt deadlines belong to the resilient
// policy layer; this is the whole-session kill switch.
func WithContext(ctx context.Context) Option {
	if ctx == nil {
		panic("core: WithContext requires a non-nil context")
	}
	return func(s *Session) { s.baseCtx = ctx }
}

// WithLogf redirects the session's rare warning logs (currently only the
// first failed cache-store append). The default is log.Printf.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(s *Session) { s.logf = logf }
}

// WithObserver attaches an observability surface to the session: its
// counters are registered in o.Registry (labelled with the scheme name,
// aggregating with any other session using the same registry and
// scheme), oracle round-trips are timed into the latency histogram, and
// — if o.Tracer is non-nil — every comparison emits one obs.Event
// recording how it was settled and the bound gap that forced any oracle
// fallback. Without this option the session keeps private instruments:
// the Stats surface is identical, only exposition and tracing are off.
//
// Observation is strictly write-only: no bound decision ever reads an
// instrument, so an observed run computes exactly what an unobserved run
// does (DESIGN.md §8).
func WithObserver(o *obs.Observer) Option {
	return func(s *Session) { s.observer = o }
}

// Session phases for the phase-labelled oracle-call counters.
const (
	phaseRun int32 = iota
	phaseBootstrap
)

// phaseName returns the obs label value for the current phase.
func (s *Session) phaseName() string {
	if s.phase.Load() == phaseBootstrap {
		return obs.PhaseBootstrap
	}
	return obs.PhaseRun
}

// callsCounter returns the oracle-call counter for the current phase.
func (s *Session) callsCounter() *obs.Counter {
	if s.phase.Load() == phaseBootstrap {
		return s.ins.BootstrapCalls
	}
	return s.ins.OracleCalls
}

// traceCmp emits one comparison event when a tracer is attached. For
// two-term comparisons (Less) k and l identify the second distance; the
// single-term shapes pass k = l = -1.
func (s *Session) traceCmp(op string, i, j, k, l int, outcome string, gap float64, latency time.Duration) {
	if s.tr == nil {
		return
	}
	s.tr.Record(obs.Event{
		Op: op, Scheme: s.schemeName, Phase: s.phaseName(),
		I: i, J: j, K: k, L: l,
		Outcome: outcome, Gap: gap, LatencyNs: int64(latency),
	})
}

// traceStart returns the start time for a comparison's oracle work, or
// the zero time when tracing is off (so untraced sessions never read the
// clock here).
func (s *Session) traceStart() time.Time {
	if s.tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// traceSince converts a traceStart mark into the latency to record.
func (s *Session) traceSince(t0 time.Time) time.Duration {
	if s.tr == nil || t0.IsZero() {
		return 0
	}
	return time.Since(t0)
}

// WithRelaxation declares the oracle a ρ-relaxed metric (d(x,z) ≤
// ρ·(d(x,y)+d(y,z)), e.g. squared Euclidean with ρ = 2 — see
// metric.Power). Only SchemeNoop and SchemeTri support ρ > 1; the other
// schemes' soundness arguments assume a true metric and NewSession panics
// if they are combined with a relaxation.
func WithRelaxation(rho float64) Option {
	if rho < 1 {
		panic("core: relaxation factor must be at least 1")
	}
	return func(s *Session) { s.rho = rho }
}

// Scheme selects a bound scheme for NewSession.
type Scheme int

// The available schemes. SchemeNoop recovers the unmodified algorithm.
const (
	SchemeNoop Scheme = iota
	SchemeSPLUB
	SchemeTri
	SchemeADM
	SchemeLAESA
	SchemeTLAESA
	SchemeDFT
	// SchemeHybrid asks Tri first and escalates to SPLUB only when the
	// triangle interval is loose (DESIGN.md §9 ablation).
	SchemeHybrid
)

// String returns the scheme name used in experiment reports.
func (sc Scheme) String() string {
	switch sc {
	case SchemeNoop:
		return "noop"
	case SchemeSPLUB:
		return "splub"
	case SchemeTri:
		return "tri"
	case SchemeADM:
		return "adm"
	case SchemeLAESA:
		return "laesa"
	case SchemeTLAESA:
		return "tlaesa"
	case SchemeDFT:
		return "dft"
	case SchemeHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("scheme(%d)", int(sc))
	}
}

// NewSession builds a Session over the oracle with the given scheme.
// Landmark schemes (LAESA/TLAESA) require a prior choice of landmarks; use
// NewSessionWithLandmarks for those, or Bootstrap afterwards.
func NewSession(oracle *metric.Oracle, scheme Scheme, opts ...Option) *Session {
	return NewSessionWithLandmarks(oracle, scheme, nil, opts...)
}

// NewSessionWithLandmarks builds a Session whose landmark-based schemes use
// the given landmark set. For non-landmark schemes the set is ignored by
// the bounder but still usable via Bootstrap.
func NewSessionWithLandmarks(oracle *metric.Oracle, scheme Scheme, landmarks []int, opts ...Option) *Session {
	return NewFallibleSessionWithLandmarks(oracle, scheme, landmarks, opts...)
}

// NewFallibleSession builds a Session over a fallible, context-aware
// oracle — typically a resilient.Oracle wrapping a remote backend. The
// error-propagating methods (DistErr, LessErr, …) surface resolution
// failures; the legacy infallible methods degrade to best-effort
// estimates and latch OracleErr instead. An in-process *metric.Oracle is
// a valid argument (it never fails), which is exactly how the legacy
// constructors are implemented.
func NewFallibleSession(fo metric.FallibleOracle, scheme Scheme, opts ...Option) *Session {
	return NewFallibleSessionWithLandmarks(fo, scheme, nil, opts...)
}

// NewFallibleSessionWithLandmarks is NewFallibleSession with an explicit
// landmark set for the landmark-based schemes.
func NewFallibleSessionWithLandmarks(fo metric.FallibleOracle, scheme Scheme, landmarks []int, opts ...Option) *Session {
	n := fo.Len()
	s := &Session{
		fo:      fo,
		g:       pgraph.New(n),
		maxDist: 1,
		baseCtx: context.Background(),
		logf:    log.Printf,
	}
	if r, ok := fo.(interface{ Ready() bool }); ok {
		s.ready = r.Ready
	}
	for _, o := range opts {
		o(s)
	}
	if s.rho > 1 && scheme != SchemeNoop && scheme != SchemeTri {
		panic(fmt.Sprintf("core: scheme %v does not support relaxed metrics", scheme))
	}
	validateSlackScheme(s.slack, scheme, s.cmp != nil)
	if s.slack.Auto && s.auditor == nil {
		// Auto slack needs a margin source; give the session its own
		// auditor when the caller did not share one.
		s.auditor = metric.NewAuditor(0)
	}
	switch scheme {
	case SchemeNoop:
		s.b = bounds.NewNoop(s.maxDist)
	case SchemeSPLUB:
		s.b = bounds.NewSPLUB(s.g, s.maxDist)
		s.sharesGraph = true
	case SchemeTri:
		rho := s.rho
		if rho < 1 {
			rho = 1
		}
		s.b = bounds.NewTriRelaxed(s.g, s.maxDist, rho)
		s.sharesGraph = true
	case SchemeADM:
		s.b = bounds.NewADM(n, s.maxDist)
	case SchemeLAESA:
		s.b = bounds.NewLAESA(n, landmarks, s.maxDist)
	case SchemeTLAESA:
		s.b = bounds.NewTLAESA(n, landmarks, s.maxDist)
	case SchemeDFT:
		dft := bounds.NewDFT(n, s.maxDist)
		s.b = dft
		if s.cmp == nil {
			s.cmp = dft
		}
	case SchemeHybrid:
		// Both sides read the shared session graph; escalate when the
		// triangle interval is wider than 10% of the distance cap.
		s.b = bounds.NewHybrid(
			bounds.NewTri(s.g, s.maxDist),
			bounds.NewSPLUB(s.g, s.maxDist),
			s.maxDist/10,
		)
		s.sharesGraph = true
	default:
		panic(fmt.Sprintf("core: unknown scheme %v", scheme))
	}
	s.schemeName = scheme.String()
	var reg *obs.Registry
	if s.observer != nil {
		reg = s.observer.Registry
		s.tr = s.observer.Tracer
		s.timed = true
	}
	if reg == nil {
		// Unobserved sessions still count into private instruments so the
		// Stats surface is identical; only exposition/tracing/timing differ.
		reg = obs.NewRegistry()
	}
	s.ins = obs.NewSessionInstruments(reg, s.schemeName)
	if s.slackAdditive() {
		s.ins.SlackEps.Set(s.slackEps())
	}
	return s
}

// N returns the number of objects.
func (s *Session) N() int { return s.g.N() }

// Stats returns a snapshot of the session's instruments. When the oracle
// is a resilient policy wrapper (anything exposing PolicyCounters), the
// policy-layer counters (Retries, Timeouts, BreakerOpens) are mirrored
// into the returned snapshot.
func (s *Session) Stats() Stats {
	st := Stats{
		OracleCalls:         s.ins.OracleCalls.Value() + s.ins.BootstrapCalls.Value(),
		BootstrapCalls:      s.ins.BootstrapCalls.Value(),
		BoundProbes:         s.ins.BoundProbes.Value(),
		SavedComparisons:    s.ins.SavedComparisons.Value(),
		ResolvedComparisons: s.ins.ResolvedComparisons.Value(),
		CacheHits:           s.ins.CacheHits.Value(),
		DegradedAnswers:     s.ins.DegradedAnswers.Value(),
		StoreErrors:         s.ins.StoreErrors.Value(),
		SlackResolved:       s.ins.SlackResolved.Value(),
	}
	if s.auditor != nil {
		st.Violations = s.auditor.Violations()
	}
	if pc, ok := s.fo.(interface {
		PolicyCounters() (retries, timeouts, breakerOpens int64)
	}); ok {
		st.Retries, st.Timeouts, st.BreakerOpens = pc.PolicyCounters()
	}
	return st
}

// Graph exposes the partial graph of resolved distances (read-only use).
func (s *Session) Graph() *pgraph.Graph { return s.g }

// Bounder returns the active bound scheme.
func (s *Session) Bounder() bounds.Bounder { return s.b }

// MaxDistance returns the configured distance cap.
func (s *Session) MaxDistance() float64 { return s.maxDist }

// Known reports whether the pair is already resolved, without any oracle
// call.
func (s *Session) Known(i, j int) (float64, bool) { return s.g.Weight(i, j) }

// Dist returns the exact distance between i and j, calling the oracle only
// if the pair has not been resolved before. The resolution is fed to the
// bound scheme (the UPDATE PROBLEM).
//
// If the resolution fails (fallible oracle exhausted, breaker open, or
// session context dead), Dist degrades: it latches OracleErr, counts a
// DegradedAnswer, and returns the midpoint of the current bounds as a
// best-effort estimate. The estimate is never committed to the graph or
// the bound scheme, so the session's soundness invariants survive; use
// DistErr when the caller needs to distinguish exact from estimated.
func (s *Session) Dist(i, j int) float64 {
	d, err := s.DistErr(i, j)
	if err != nil {
		s.ins.DegradedAnswers.Inc()
		return s.estimate(i, j)
	}
	return d
}

// DistErr is Dist with error propagation: it returns the exact distance,
// or a non-nil error wrapping ErrOracleUnavailable when the resolution
// failed. Nothing is committed on failure, so a later retry of the same
// pair is safe.
func (s *Session) DistErr(i, j int) (float64, error) {
	if i == j {
		return 0, nil
	}
	if w, ok := s.g.Weight(i, j); ok {
		return w, nil
	}
	d, err := s.oracleDistanceErr(i, j)
	if err != nil {
		s.noteOracleErr(err)
		return 0, err
	}
	s.commitResolution(i, j, d)
	return d, nil
}

// oracleDistanceErr performs the raw oracle round-trip with no session
// bookkeeping or mutation. It is the only Session path that touches the
// oracle, split from commitResolution so SharedSession can release its
// lock around the call (which is also why it must not write any
// lock-protected session state — the caller owns error latching; the
// latency histogram is an atomic instrument, so observing into it here
// is safe without the lock).
func (s *Session) oracleDistanceErr(i, j int) (float64, error) {
	var t0 time.Time
	if s.timed {
		t0 = time.Now()
	}
	d, err := s.fo.DistanceCtx(s.baseCtx, i, j)
	if s.timed {
		// Failed round-trips are recorded too: the histogram measures wall
		// clock paid at the oracle, including retry/backoff in the
		// resilient layer below.
		s.ins.OracleLatency.Observe(int64(time.Since(t0)))
	}
	if err != nil {
		return 0, fmt.Errorf("%w: dist(%d,%d): %w", ErrOracleUnavailable, i, j, err)
	}
	return d, nil
}

// commitResolution records a freshly resolved distance: statistics, the
// partial graph, the bound scheme, and the attached store. Callers must
// ensure the pair is not already recorded (pgraph panics on conflicting
// weights, and a duplicate would double-count OracleCalls).
func (s *Session) commitResolution(i, j int, d float64) {
	s.callsCounter().Inc()
	s.record(i, j, d)
	s.persistResolution(i, j, d)
}

func (s *Session) record(i, j int, d float64) {
	if s.auditor != nil {
		// Audit before AddEdge: auditTriangles borrows adjacency rows,
		// and the commit below may grow the slabs and invalidate them.
		s.auditTriangles(i, j, d)
		if s.slack.Auto {
			// Publish the possibly escalated ε; in-process bounds are
			// derived fresh per query, so escalation needs no cache
			// invalidation here (remote mirrors watch this gauge's value
			// through the wire instead).
			s.ins.SlackEps.Set(s.slackEps())
		}
	}
	if s.sharesGraph {
		// SPLUB/Tri read the session graph; a single AddEdge serves both.
		s.g.AddEdge(i, j, d)
		return
	}
	s.g.AddEdge(i, j, d)
	s.b.Update(i, j, d)
}

// Bounds returns the current lower and upper bounds for (i, j) without any
// oracle call. Resolved pairs return the exact value twice. Under an
// active additive slack policy the derived interval is widened to
// [lb−ε, ub+ε] (self-pairs and resolved pairs stay exact: oracle values
// are not derived, so the near-metric contract does not touch them).
func (s *Session) Bounds(i, j int) (lb, ub float64) {
	if i == j {
		return 0, 0
	}
	if w, ok := s.g.Weight(i, j); ok {
		return w, w
	}
	s.ins.BoundProbes.Inc()
	lb, ub = s.b.Bounds(i, j)
	if s.slackAdditive() {
		if eps := s.slackEps(); eps > 0 {
			lb, ub = s.slack.Relax(lb, ub, eps, s.maxDist)
		}
	}
	return lb, ub
}

// BoundsBatch answers one bound query per (is[x], js[x]) pair into
// lb[x]/ub[x], with no oracle calls — exactly the intervals Bounds would
// return pair by pair, including the self-pair and resolved-pair exact
// answers. When the active scheme implements bounds.BatchBounder (Tri
// does), the whole batch runs in one pass over the scheme's state; other
// schemes fall back to a per-pair loop. All four slices must share a
// length. This is the entry point the service's /batch endpoint and the
// remote client's prefetch drive.
func (s *Session) BoundsBatch(is, js []int, lb, ub []float64) {
	if len(is) != len(js) || len(is) != len(lb) || len(is) != len(ub) {
		panic("core: BoundsBatch slice lengths differ")
	}
	bb, ok := s.b.(bounds.BatchBounder)
	if !ok {
		for q := range is {
			lb[q], ub[q] = s.Bounds(is[q], js[q])
		}
		return
	}
	// Count probes exactly as the per-pair loop would: one per pair that
	// reaches the bounder (not a self-pair, not already resolved), so the
	// stats surface cannot tell the two paths apart.
	var probes int64
	for q := range is {
		if is[q] != js[q] && !s.g.Known(is[q], js[q]) {
			probes++
		}
	}
	bb.BoundsBatch(is, js, lb, ub)
	s.ins.BoundProbes.Add(probes)
	if s.slackAdditive() {
		if eps := s.slackEps(); eps > 0 {
			// Relax exactly the derived intervals: the same predicate as
			// the probe count, so self-pairs and resolved pairs stay
			// exact on the batch path too.
			for q := range is {
				if is[q] != js[q] && !s.g.Known(is[q], js[q]) {
					lb[q], ub[q] = s.slack.Relax(lb[q], ub[q], eps, s.maxDist)
				}
			}
		}
	}
}

// Less reports whether dist(i,j) < dist(k,l) — the paper's canonical IF
// statement — resolving distances only when the bound scheme (and
// comparator, if any) cannot decide.
//
// When a needed resolution fails, Less degrades like Dist: OracleErr is
// latched, a DegradedAnswer is counted, and the comparison is answered
// from bounds-midpoint estimates. Use LessErr or LessOutcome to observe
// failures per call.
func (s *Session) Less(i, j, k, l int) bool {
	r, _ := s.LessOutcome(i, j, k, l)
	return r
}

// noteSaved counts a comparison settled from bounds (or the comparator)
// with no oracle call. While the fallible oracle reports itself
// unavailable (circuit breaker open), such answers also count as
// DegradedAnswers: they are still exact — bounds are sound — but they are
// the only answers the session can currently produce exactly.
func (s *Session) noteSaved() {
	s.ins.SavedComparisons.Inc()
	if s.ready != nil && !s.ready() {
		s.ins.DegradedAnswers.Inc()
	}
}

// decideLess attempts to settle dist(i,j) < dist(k,l) from cached
// distances, interval bounds, and the comparator alone, updating
// statistics and tracing the settled outcomes. OutcomeUndecided means
// the caller must resolve both distances and compare; ResolvedComparisons
// has already been counted in that case, and gap reports the width of the
// bound-interval overlap that kept the comparison undecided (the "why did
// we pay?" figure; 0 when settled). This is the bookkeeping half of Less,
// callable under SharedSession's lock because it never touches the
// oracle.
func (s *Session) decideLess(i, j, k, l int) (result bool, out Outcome, gap float64) {
	kn1, ok1 := s.Known(i, j)
	kn2, ok2 := s.Known(k, l)
	if ok1 && ok2 {
		s.ins.CacheHits.Inc()
		s.traceCmp(obs.OpLess, i, j, k, l, obs.OutcomeCache, 0, 0)
		return kn1 < kn2, OutcomeExact, 0
	}
	lb1, ub1 := s.Bounds(i, j)
	lb2, ub2 := s.Bounds(k, l)
	if ub1 < lb2 {
		s.noteSaved()
		out, oc := s.boundsOutcome()
		s.traceCmp(obs.OpLess, i, j, k, l, oc, 0, 0)
		return true, out, 0
	}
	if lb1 >= ub2 {
		s.noteSaved()
		out, oc := s.boundsOutcome()
		s.traceCmp(obs.OpLess, i, j, k, l, oc, 0, 0)
		return false, out, 0
	}
	if s.cmp != nil {
		if s.cmp.ProveLess(i, j, k, l) {
			s.noteSaved()
			s.traceCmp(obs.OpLess, i, j, k, l, obs.OutcomeBounds, 0, 0)
			return true, OutcomeBounds, 0
		}
		if s.cmp.ProveLess(k, l, i, j) {
			// dist(k,l) < dist(i,j) implies not less.
			s.noteSaved()
			s.traceCmp(obs.OpLess, i, j, k, l, obs.OutcomeBounds, 0, 0)
			return false, OutcomeBounds, 0
		}
	}
	s.ins.ResolvedComparisons.Inc()
	return false, OutcomeUndecided, math.Min(ub1, ub2) - math.Max(lb1, lb2)
}

// LessThan reports whether dist(i,j) < c, resolving the distance only when
// the bounds are inconclusive. On a failed resolution it degrades exactly
// like Less; use LessThanErr to observe failures.
func (s *Session) LessThan(i, j int, c float64) bool {
	r, out, gap := s.decideLessThan(i, j, c)
	if out != OutcomeUndecided {
		return r
	}
	t0 := s.traceStart()
	d, err := s.DistErr(i, j)
	lat := s.traceSince(t0)
	if err != nil {
		s.ins.DegradedAnswers.Inc()
		s.traceCmp(obs.OpLessThan, i, j, -1, -1, obs.OutcomeDegraded, gap, lat)
		return s.estimate(i, j) < c
	}
	s.traceCmp(obs.OpLessThan, i, j, -1, -1, obs.OutcomeOracle, gap, lat)
	return d < c
}

// decideLessThan is the bookkeeping half of LessThan; see decideLess. An
// undecided gap is the width of the bound interval straddling c.
func (s *Session) decideLessThan(i, j int, c float64) (result bool, out Outcome, gap float64) {
	if w, ok := s.Known(i, j); ok {
		s.ins.CacheHits.Inc()
		s.traceCmp(obs.OpLessThan, i, j, -1, -1, obs.OutcomeCache, 0, 0)
		return w < c, OutcomeExact, 0
	}
	lb, ub := s.Bounds(i, j)
	if ub < c {
		s.noteSaved()
		out, oc := s.boundsOutcome()
		s.traceCmp(obs.OpLessThan, i, j, -1, -1, oc, 0, 0)
		return true, out, 0
	}
	if lb >= c {
		s.noteSaved()
		out, oc := s.boundsOutcome()
		s.traceCmp(obs.OpLessThan, i, j, -1, -1, oc, 0, 0)
		return false, out, 0
	}
	if s.cmp != nil {
		if s.cmp.ProveLessC(i, j, c) {
			s.noteSaved()
			s.traceCmp(obs.OpLessThan, i, j, -1, -1, obs.OutcomeBounds, 0, 0)
			return true, OutcomeBounds, 0
		}
		if s.cmp.ProveGEC(i, j, c) {
			s.noteSaved()
			s.traceCmp(obs.OpLessThan, i, j, -1, -1, obs.OutcomeBounds, 0, 0)
			return false, OutcomeBounds, 0
		}
	}
	s.ins.ResolvedComparisons.Inc()
	return false, OutcomeUndecided, ub - lb
}

// DistIfLess is the value-needed variant of LessThan used by algorithms
// that must store the distance when the comparison succeeds (Prim's key
// update, PAM's nearest-medoid assignment). If dist(i,j) ≥ c can be proven
// from bounds, it returns (0, false) with no oracle call; otherwise it
// resolves the distance and reports whether it is below c. On a failed
// resolution it degrades like Dist (the returned value is an uncommitted
// estimate); use DistIfLessErr to observe failures.
func (s *Session) DistIfLess(i, j int, c float64) (float64, bool) {
	d, less, out, gap := s.decideDistIfLess(i, j, c)
	if out != OutcomeUndecided {
		return d, less
	}
	t0 := s.traceStart()
	d, err := s.DistErr(i, j)
	lat := s.traceSince(t0)
	if err != nil {
		s.ins.DegradedAnswers.Inc()
		s.traceCmp(obs.OpDistIfLess, i, j, -1, -1, obs.OutcomeDegraded, gap, lat)
		e := s.estimate(i, j)
		return e, e < c
	}
	s.traceCmp(obs.OpDistIfLess, i, j, -1, -1, obs.OutcomeOracle, gap, lat)
	return d, d < c
}

// decideDistIfLess is the bookkeeping half of DistIfLess; see decideLess.
// An undecided gap is min(c, ub) − lb: how far below the cutoff the lower
// bound sat, capped at the interval width so callers passing c = +Inf
// (Prim's initial keys) report a finite, comparable figure (the value is
// needed, so the upper bound alone can never save the call).
func (s *Session) decideDistIfLess(i, j int, c float64) (d float64, less bool, out Outcome, gap float64) {
	if w, ok := s.Known(i, j); ok {
		s.ins.CacheHits.Inc()
		s.traceCmp(obs.OpDistIfLess, i, j, -1, -1, obs.OutcomeCache, 0, 0)
		return w, w < c, OutcomeExact, 0
	}
	lb, ub := s.Bounds(i, j)
	if lb >= c {
		s.noteSaved()
		out, oc := s.boundsOutcome()
		s.traceCmp(obs.OpDistIfLess, i, j, -1, -1, oc, 0, 0)
		return 0, false, out, 0
	}
	if s.cmp != nil && s.cmp.ProveGEC(i, j, c) {
		s.noteSaved()
		s.traceCmp(obs.OpDistIfLess, i, j, -1, -1, obs.OutcomeBounds, 0, 0)
		return 0, false, OutcomeBounds, 0
	}
	s.ins.ResolvedComparisons.Inc()
	gap = c - lb
	if ub < c {
		gap = ub - lb
	}
	return 0, false, OutcomeUndecided, gap
}

// Bootstrap resolves all landmark-to-object distances through the oracle
// (feeding the bound scheme) and returns the number of calls spent — the
// Bootstrap column of the paper's tables. The same routine initialises the
// baselines (LAESA/TLAESA) and the bootstrapped Tri Scheme.
//
// On a fallible oracle, Bootstrap aborts at the first failed resolution
// (latching OracleErr) rather than feeding estimates into the bound
// tables: the landmark schemes treat bootstrap rows as exact, so a
// best-effort value there would be unsound. The partially filled tables
// remain valid — LAESA/TLAESA skip unresolved (NaN-sentinel) entries.
// Use BootstrapErr to observe the abort.
func (s *Session) Bootstrap(landmarks []int) int64 {
	spent, _ := s.BootstrapErr(landmarks)
	return spent
}

// bootstrapAbort carries a resolution failure out of a Bootstrapper's
// callback, whose signature cannot return errors.
type bootstrapAbort struct{ err error }

// BootstrapErr is Bootstrap with error propagation: it returns the calls
// spent before the first failed resolution, and that failure (nil when
// the bootstrap completed).
func (s *Session) BootstrapErr(landmarks []int) (spent int64, err error) {
	// Flip the phase so commitResolution counts into the
	// phase=bootstrap series; the spent figure is the counter's delta.
	s.phase.Store(phaseBootstrap)
	before := s.ins.BootstrapCalls.Value()
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(bootstrapAbort)
			if !ok {
				panic(r)
			}
			err = a.err
		}
		spent = s.ins.BootstrapCalls.Value() - before
		s.phase.Store(phaseRun)
	}()
	resolve := func(i, j int) float64 {
		d, derr := s.DistErr(i, j)
		if derr != nil {
			panic(bootstrapAbort{derr})
		}
		return d
	}
	if b, ok := s.b.(bounds.Bootstrapper); ok {
		b.Bootstrap(resolve, landmarks)
	} else {
		for _, e := range bounds.EdgesForBootstrap(s.N(), landmarks) {
			resolve(e.U, e.V)
		}
	}
	return 0, nil // real values assigned in the deferred epilogue
}

// PickLandmarks selects k well-separated landmarks with the classic greedy
// max-min rule used by LAESA's base-prototype selection, spending (k−1)·n
// oracle-call-free selections: the first landmark is arbitrary and
// subsequent ones maximise the minimum distance to those already chosen,
// using distances that Bootstrap will resolve anyway. To avoid spending
// extra calls before bootstrap, the greedy selection runs on a cheap
// surrogate: a deterministic pseudo-random spread seeded by seed.
//
// The paper treats landmark choice as an input (and shows in Figure 5b
// that no universally good count exists); this helper simply provides a
// reproducible default.
func PickLandmarks(n, k int, seed int64) []int {
	if k >= n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	return perm[:k]
}

// GreedyLandmarks picks k landmarks with the true LAESA max-min rule,
// spending oracle calls ((k−1)·n in the worst case) through the session so
// the resolved rows double as bootstrap. It returns the landmark set; the
// calls it makes are indistinguishable from Bootstrap calls in the stats.
func (s *Session) GreedyLandmarks(k int) []int {
	n := s.N()
	if k >= n {
		k = n
	}
	s.phase.Store(phaseBootstrap)
	defer s.phase.Store(phaseRun)
	landmarks := make([]int, 0, k)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = s.maxDist * 2
	}
	// selected[x] replaces a linear scan of the landmark slice inside the
	// selection loop, turning the selection from O(n·k²) into O(n·k).
	selected := make([]bool, n)
	cur := 0 // arbitrary first landmark
	landmarks = append(landmarks, cur)
	selected[cur] = true
	for len(landmarks) < k {
		far, farD := -1, -1.0
		for x := 0; x < n; x++ {
			if x == cur {
				minDist[x] = 0
				continue
			}
			if d := s.Dist(cur, x); d < minDist[x] {
				minDist[x] = d
			}
			if minDist[x] > farD && !selected[x] {
				far, farD = x, minDist[x]
			}
		}
		landmarks = append(landmarks, far)
		selected[far] = true
		cur = far
	}
	// Finish the final landmark's row so the bootstrap is complete.
	for x := 0; x < n; x++ {
		if x != cur {
			s.Dist(cur, x)
		}
	}
	return landmarks
}
