package core

import (
	"errors"

	"metricprox/internal/obs"
)

// ErrOracleUnavailable wraps every resolution failure surfaced by the
// error-propagating Session methods (DistErr, LessErr, …): the bound
// scheme could not settle the comparison and the oracle could not be
// reached (retry budget exhausted, circuit breaker open, or the session
// context is dead). The underlying cause is wrapped and available via
// errors.Is/As.
var ErrOracleUnavailable = errors.New("core: oracle unavailable")

// Outcome classifies how a comparison was answered. The three
// user-visible outcomes let callers of a fallible session distinguish
// "exact", "bounds-resolved" (also exact — bounds are sound — but paid no
// oracle call), and "best-effort while unavailable".
type Outcome int

const (
	// OutcomeUndecided is internal: the bookkeeping half of a comparison
	// could not settle it and the oracle must be consulted. It never
	// escapes the exported methods.
	OutcomeUndecided Outcome = iota
	// OutcomeExact means the answer came from exact distances (cache hit
	// or a successful oracle resolution).
	OutcomeExact
	// OutcomeBounds means the answer was proven from triangle-inequality
	// bounds (or the comparator) with no oracle call. Still exact.
	OutcomeBounds
	// OutcomeUnavailable means a needed resolution failed and the answer
	// is a best-effort estimate from bounds midpoints. OracleErr is
	// latched whenever this outcome is produced.
	OutcomeUnavailable
	// OutcomeSlack means the answer was proven from bound intervals that
	// an active SlackPolicy had widened: exact under the declared
	// near-metric contract (d ≤ ρ·(sum of legs) + ε), rather than
	// unconditionally like OutcomeBounds.
	OutcomeSlack
)

// String returns the outcome name used in reports.
func (o Outcome) String() string {
	switch o {
	case OutcomeUndecided:
		return "undecided"
	case OutcomeExact:
		return "exact"
	case OutcomeBounds:
		return "bounds"
	case OutcomeUnavailable:
		return "unavailable"
	case OutcomeSlack:
		return "slack"
	default:
		return "outcome(?)"
	}
}

// OracleErr returns the first resolution failure the session has seen,
// or nil. Once non-nil, answers produced since by the legacy infallible
// methods may be best-effort estimates (counted in Stats.DegradedAnswers)
// rather than exact; a run that finishes with OracleErr() == nil is
// guaranteed identical to a fault-free run.
func (s *Session) OracleErr() error { return s.oracleErr }

// noteOracleErr latches the first resolution failure. Callers on the
// SharedSession path must hold the session lock.
func (s *Session) noteOracleErr(err error) {
	if s.oracleErr == nil {
		s.oracleErr = err
	}
}

// estimate returns the midpoint of the current bounds for (i, j) — the
// best-effort value the legacy methods fall back to when a resolution
// fails. Estimates are never committed to the graph or the bound scheme,
// so they cannot poison later exact answers.
func (s *Session) estimate(i, j int) float64 {
	lb, ub := s.Bounds(i, j)
	return (lb + ub) / 2
}

// LessErr is Less with error propagation: it reports dist(i,j) <
// dist(k,l), or a non-nil error wrapping ErrOracleUnavailable when the
// bounds were inconclusive and a needed resolution failed.
func (s *Session) LessErr(i, j, k, l int) (bool, error) {
	r, out, gap := s.decideLess(i, j, k, l)
	if out != OutcomeUndecided {
		return r, nil
	}
	t0 := s.traceStart()
	d1, err := s.DistErr(i, j)
	var d2 float64
	if err == nil {
		d2, err = s.DistErr(k, l)
	}
	lat := s.traceSince(t0)
	if err != nil {
		s.traceCmp(obs.OpLess, i, j, k, l, obs.OutcomeError, gap, lat)
		return false, err
	}
	s.traceCmp(obs.OpLess, i, j, k, l, obs.OutcomeOracle, gap, lat)
	return d1 < d2, nil
}

// LessOutcome is Less plus a per-call outcome report. Unlike LessErr it
// never fails: when a needed resolution errors it answers from bounds
// midpoints and reports OutcomeUnavailable (counting a DegradedAnswer),
// which is exactly the legacy Less behaviour made observable.
func (s *Session) LessOutcome(i, j, k, l int) (result bool, out Outcome) {
	r, out, gap := s.decideLess(i, j, k, l)
	if out != OutcomeUndecided {
		return r, out
	}
	t0 := s.traceStart()
	d1, err := s.DistErr(i, j)
	var d2 float64
	if err == nil {
		d2, err = s.DistErr(k, l)
	}
	lat := s.traceSince(t0)
	if err == nil {
		s.traceCmp(obs.OpLess, i, j, k, l, obs.OutcomeOracle, gap, lat)
		return d1 < d2, OutcomeExact
	}
	s.ins.DegradedAnswers.Inc()
	s.traceCmp(obs.OpLess, i, j, k, l, obs.OutcomeDegraded, gap, lat)
	return s.estimate(i, j) < s.estimate(k, l), OutcomeUnavailable
}

// LessThanErr is LessThan with error propagation; see LessErr.
func (s *Session) LessThanErr(i, j int, c float64) (bool, error) {
	r, out, gap := s.decideLessThan(i, j, c)
	if out != OutcomeUndecided {
		return r, nil
	}
	t0 := s.traceStart()
	d, err := s.DistErr(i, j)
	lat := s.traceSince(t0)
	if err != nil {
		s.traceCmp(obs.OpLessThan, i, j, -1, -1, obs.OutcomeError, gap, lat)
		return false, err
	}
	s.traceCmp(obs.OpLessThan, i, j, -1, -1, obs.OutcomeOracle, gap, lat)
	return d < c, nil
}

// DistIfLessErr is DistIfLess with error propagation; see LessErr.
func (s *Session) DistIfLessErr(i, j int, c float64) (float64, bool, error) {
	d, less, out, gap := s.decideDistIfLess(i, j, c)
	if out != OutcomeUndecided {
		return d, less, nil
	}
	t0 := s.traceStart()
	d, err := s.DistErr(i, j)
	lat := s.traceSince(t0)
	if err != nil {
		s.traceCmp(obs.OpDistIfLess, i, j, -1, -1, obs.OutcomeError, gap, lat)
		return 0, false, err
	}
	s.traceCmp(obs.OpDistIfLess, i, j, -1, -1, obs.OutcomeOracle, gap, lat)
	return d, d < c, nil
}
