package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

// TestQuickSessionInvariants drives random operation sequences against a
// session and checks the global invariants:
//
//   - every answer matches ground truth (exactness),
//   - bounds always bracket the truth and never widen for a given pair,
//   - resolved pairs report exact bounds forever after,
//   - the session's call counter equals the oracle's.
func TestQuickSessionInvariants(t *testing.T) {
	schemes := []Scheme{SchemeTri, SchemeSPLUB, SchemeADM, SchemeHybrid}
	f := func(seed int64, ops []uint16) bool {
		n := 12
		m := datasets.RandomMetric(n, seed)
		o := metric.NewOracle(m)
		s := NewSession(o, schemes[int(uint64(seed)%uint64(len(schemes)))])
		rng := rand.New(rand.NewSource(seed + 1))

		prevLB := map[int64]float64{}
		prevUB := map[int64]float64{}
		key := func(i, j int) int64 {
			if i > j {
				i, j = j, i
			}
			return int64(i)*64 + int64(j)
		}
		for _, op := range ops {
			i, j := int(op)%n, int(op>>4)%n
			k, l := rng.Intn(n), rng.Intn(n)
			if i == j || k == l {
				continue
			}
			switch op % 5 {
			case 0:
				if s.Dist(i, j) != m.Distance(i, j) {
					return false
				}
			case 1:
				if s.Less(i, j, k, l) != (m.Distance(i, j) < m.Distance(k, l)) {
					return false
				}
			case 2:
				c := rng.Float64()
				if s.LessThan(i, j, c) != (m.Distance(i, j) < c) {
					return false
				}
			case 3:
				c := rng.Float64()
				d, less := s.DistIfLess(i, j, c)
				if less != (m.Distance(i, j) < c) {
					return false
				}
				if less && d != m.Distance(i, j) {
					return false
				}
			case 4:
				lb, ub := s.Bounds(i, j)
				d := m.Distance(i, j)
				if lb > d+1e-9 || ub < d-1e-9 {
					return false
				}
				// Bounds tighten monotonically per pair.
				if plb, ok := prevLB[key(i, j)]; ok && lb < plb-1e-9 {
					return false
				}
				if pub, ok := prevUB[key(i, j)]; ok && ub > pub+1e-9 {
					return false
				}
				prevLB[key(i, j)] = lb
				prevUB[key(i, j)] = ub
				if _, known := s.Known(i, j); known && lb != ub {
					return false
				}
			}
		}
		return s.Stats().OracleCalls == o.Calls()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
