package core

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrTooManySessions is returned by SessionRegistry.GetOrCreate when
// admitting one more session would exceed the registry's cap. Callers
// (the service layer) translate it into a load-shedding response rather
// than evicting someone else's bound state.
var ErrTooManySessions = errors.New("session registry full")

// SessionEntry is one named session hosted by a SessionRegistry: the
// shared session itself plus an opaque Data payload the owner attaches at
// build time (the service layer stores its admission queue and cache
// store there, keeping the registry free of service concerns).
type SessionEntry struct {
	// Name is the registry key the entry was created under.
	Name string
	// Session is the hosted multi-tenant session.
	Session *SharedSession
	// Data is the owner's payload, set by the build callback and carried
	// untouched; nil if the builder did not provide one.
	Data any

	// re backlinks to the registry bookkeeping so Release can find the
	// exact generation that was acquired even after the name has been
	// evicted and re-created.
	re *regEntry
}

// regEntry wraps a SessionEntry with the registry's bookkeeping: the
// single-flight ready latch, the idle clock for TTL eviction, and the
// in-use generation that keeps an entry's resources alive while handlers
// hold it.
type regEntry struct {
	entry    *SessionEntry
	err      error         // build failure, set before ready closes
	ready    chan struct{} // closed once the build callback returns
	lastUsed time.Time     // guarded by the registry mutex
	active   int           // handlers currently holding the entry (Acquire/Release)
	removed  bool          // evicted while active; onEvict deferred to last Release
}

// SessionRegistry hosts named SharedSessions with single-flight creation,
// a max-sessions cap, and TTL-based idle eviction. It is the in-core half
// of the metricproxd daemon: the registry owns lifecycle (who exists,
// when they die) while the service layer owns transport and admission.
//
// Creation is single-flight per name: when several clients race to attach
// to the same session, exactly one runs the (potentially expensive —
// bootstrap, cache replay) build callback while the rest block until it
// finishes, then share the result. The registry lock is never held across
// a build, so building one session does not stall lookups of others.
type SessionRegistry struct {
	mu      sync.Mutex
	max     int           // cap on live+pending sessions; <= 0 means unlimited
	ttl     time.Duration // idle eviction horizon; <= 0 means never
	now     func() time.Time
	onEvict func(*SessionEntry)
	entries map[string]*regEntry
}

// NewSessionRegistry returns a registry holding at most maxSessions
// sessions (<= 0 for unlimited) and evicting entries idle longer than ttl
// on each Sweep (<= 0 disables TTL eviction). onEvict, if non-nil, runs
// for every entry leaving the registry — Evict, Sweep, and Clear alike —
// outside the registry lock, so it may safely close stores or flush
// state.
func NewSessionRegistry(maxSessions int, ttl time.Duration, onEvict func(*SessionEntry)) *SessionRegistry {
	return &SessionRegistry{
		max:     maxSessions,
		ttl:     ttl,
		now:     time.Now,
		onEvict: onEvict,
		entries: make(map[string]*regEntry),
	}
}

// GetOrCreate returns the session registered under name, building it with
// build on first use. created reports whether this call ran the build.
// Concurrent callers for the same name share one build; losers of the
// race block until it completes and then see the winner's result (or its
// error — a failed build is not cached, so the next caller retries).
// Returns ErrTooManySessions when the cap is reached and name does not
// already exist.
func (r *SessionRegistry) GetOrCreate(name string, build func() (*SharedSession, any, error)) (entry *SessionEntry, created bool, err error) {
	r.mu.Lock()
	if re, ok := r.entries[name]; ok {
		r.mu.Unlock()
		return r.await(name, re)
	}
	if r.max > 0 && len(r.entries) >= r.max {
		r.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %d sessions, cap %d", ErrTooManySessions, len(r.entries), r.max)
	}
	re := &regEntry{ready: make(chan struct{}), lastUsed: r.now()}
	r.entries[name] = re
	r.mu.Unlock()

	s, data, err := build()

	r.mu.Lock()
	if err != nil {
		delete(r.entries, name) // failed builds are not cached
		re.err = err
	} else {
		re.entry = &SessionEntry{Name: name, Session: s, Data: data, re: re}
		re.lastUsed = r.now()
	}
	close(re.ready)
	r.mu.Unlock()
	if err != nil {
		return nil, false, err
	}
	return re.entry, true, nil
}

// await blocks until re's build completes and returns its result,
// touching the idle clock on success.
func (r *SessionRegistry) await(name string, re *regEntry) (*SessionEntry, bool, error) {
	<-re.ready
	r.mu.Lock()
	defer r.mu.Unlock()
	if re.err != nil {
		return nil, false, re.err
	}
	re.lastUsed = r.now()
	return re.entry, false, nil
}

// Get returns the entry registered under name, or nil when absent. A hit
// touches the idle clock. Get does not block on a pending build; a
// session still being built is reported as absent (attach via GetOrCreate
// to wait for it).
func (r *SessionRegistry) Get(name string) *SessionEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	re, ok := r.entries[name]
	if !ok || re.entry == nil {
		return nil
	}
	re.lastUsed = r.now()
	return re.entry
}

// Acquire returns the entry registered under name with its in-use
// generation taken, or nil when absent. While held, the entry is immune
// to the TTL sweeper and its onEvict hook (which closes cache stores) is
// deferred past the hold — the fix for the sweeper-vs-handler race where
// a drain-era request could have its session's store closed underfoot.
// Every successful Acquire must be paired with exactly one Release.
func (r *SessionRegistry) Acquire(name string) *SessionEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	re, ok := r.entries[name]
	if !ok || re.entry == nil {
		return nil
	}
	re.lastUsed = r.now()
	re.active++
	return re.entry
}

// Release returns an entry taken with Acquire. It touches the idle clock
// (the handler just finished using the session, so it was not idle) and,
// when the entry was evicted while held, runs the deferred onEvict hook —
// outside the lock, exactly once, after the last holder lets go. The
// entry pointer, not the name, identifies the generation: releasing after
// the name was evicted and re-created under a fresh session never touches
// the newcomer.
func (r *SessionRegistry) Release(e *SessionEntry) {
	if e == nil || e.re == nil {
		return
	}
	r.mu.Lock()
	re := e.re
	if re.active <= 0 {
		r.mu.Unlock()
		return
	}
	re.active--
	re.lastUsed = r.now()
	evict := re.active == 0 && re.removed
	r.mu.Unlock()
	if evict && r.onEvict != nil {
		r.onEvict(re.entry)
	}
}

// Evict removes name from the registry, running the onEvict hook outside
// the lock, and reports whether an entry was removed. Evicting a name
// whose build is still in flight is refused (reported as false) — the
// builder would resurrect a zombie entry. Evicting an entry a handler
// currently holds (Acquire without Release yet) removes it from the
// registry immediately but defers the onEvict hook to the final Release,
// so the holder's session and store stay usable until it finishes.
func (r *SessionRegistry) Evict(name string) bool {
	r.mu.Lock()
	re, ok := r.entries[name]
	if !ok || re.entry == nil {
		r.mu.Unlock()
		return false
	}
	delete(r.entries, name)
	if re.active > 0 {
		re.removed = true
		r.mu.Unlock()
		return true
	}
	r.mu.Unlock()
	if r.onEvict != nil {
		r.onEvict(re.entry)
	}
	return true
}

// Sweep evicts every entry idle longer than the registry TTL and returns
// the evicted entries' names. A zero TTL makes Sweep a no-op. The service
// daemon calls this periodically; tests call it with an injected clock.
//
// An entry currently held by a handler (Acquire without Release) is never
// swept: "in use right now" is the strongest possible proof of not being
// idle, and sweeping it would close the session's cache store underneath
// the handler. The idle clock, the in-use count, and the map removal are
// all read and written under the one registry lock, so there is no window
// in which a handler can acquire an entry the sweeper has already chosen.
func (r *SessionRegistry) Sweep() []string {
	if r.ttl <= 0 {
		return nil
	}
	r.mu.Lock()
	cutoff := r.now().Add(-r.ttl)
	var victims []*regEntry
	for name, re := range r.entries {
		if re.entry != nil && re.active == 0 && re.lastUsed.Before(cutoff) {
			delete(r.entries, name)
			victims = append(victims, re)
		}
	}
	r.mu.Unlock()
	names := make([]string, 0, len(victims))
	for _, re := range victims {
		names = append(names, re.entry.Name)
		if r.onEvict != nil {
			r.onEvict(re.entry)
		}
	}
	return names
}

// Clear evicts every ready entry (onEvict runs for each, outside the
// lock) and returns how many were removed; the daemon drains with this on
// shutdown so cache stores are flushed and closed exactly once.
func (r *SessionRegistry) Clear() int {
	r.mu.Lock()
	var victims []*regEntry
	n := 0
	for name, re := range r.entries {
		if re.entry != nil {
			delete(r.entries, name)
			n++
			if re.active > 0 {
				// A handler still holds it (shutdown with a straggling
				// request): defer the hook to its final Release.
				re.removed = true
				continue
			}
			victims = append(victims, re)
		}
	}
	r.mu.Unlock()
	for _, re := range victims {
		if r.onEvict != nil {
			r.onEvict(re.entry)
		}
	}
	return n
}

// Names returns the ready sessions' names in no particular order.
func (r *SessionRegistry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	for name, re := range r.entries {
		if re.entry != nil {
			names = append(names, name)
		}
	}
	return names
}

// Len returns the number of sessions counted against the cap, including
// builds still in flight.
func (r *SessionRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
