package core

import (
	"math/rand"
	"testing"

	"metricprox/internal/datasets"
	"metricprox/internal/metric"
)

// squaredSpace returns a squared-Euclidean space (ρ = 2 relaxed metric)
// normalised into [0,1].
func squaredSpace(n int, seed int64) *metric.Power {
	base := datasets.SFPOIPlanar(n, seed) // L1 in [0,1]
	return metric.NewPower(base, 2)
}

func TestPowerRho(t *testing.T) {
	base := datasets.SFPOIPlanar(10, 1)
	if got := metric.NewPower(base, 0.5).Rho(); got != 1 {
		t.Fatalf("snowflake Rho = %v, want 1", got)
	}
	if got := metric.NewPower(base, 2).Rho(); got != 2 {
		t.Fatalf("squared Rho = %v, want 2", got)
	}
	if got := metric.NewPower(base, 3).Rho(); got != 4 {
		t.Fatalf("cubed Rho = %v, want 4", got)
	}
}

func TestPowerRelaxedTriangleHolds(t *testing.T) {
	// d² must satisfy the ρ=2 relaxed inequality on sampled triples.
	sq := squaredSpace(40, 2)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		i, j, k := rng.Intn(40), rng.Intn(40), rng.Intn(40)
		if sq.Distance(i, j) > 2*(sq.Distance(i, k)+sq.Distance(k, j))+1e-12 {
			t.Fatalf("relaxed triangle violated on (%d,%d,%d)", i, j, k)
		}
	}
}

func TestRelaxedTriComparisonsExact(t *testing.T) {
	// The framework's exactness guarantee must survive relaxation: every
	// comparison over the ρ=2 space answers exactly as ground truth.
	sq := squaredSpace(25, 4)
	o := metric.NewOracle(sq)
	s := NewSession(o, SchemeTri, WithRelaxation(2))
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 400; trial++ {
		i, j, k, l := rng.Intn(25), rng.Intn(25), rng.Intn(25), rng.Intn(25)
		if i == j || k == l {
			continue
		}
		want := sq.Distance(i, j) < sq.Distance(k, l)
		if got := s.Less(i, j, k, l); got != want {
			t.Fatalf("relaxed Less(%d,%d,%d,%d) = %v, want %v", i, j, k, l, got, want)
		}
	}
}

func TestRelaxedTriSoundBounds(t *testing.T) {
	sq := squaredSpace(20, 6)
	o := metric.NewOracle(sq)
	s := NewSession(o, SchemeTri, WithRelaxation(2))
	rng := rand.New(rand.NewSource(7))
	for e := 0; e < 60; e++ {
		i, j := rng.Intn(20), rng.Intn(20)
		if i != j {
			s.Dist(i, j)
		}
	}
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			lb, ub := s.Bounds(i, j)
			d := sq.Distance(i, j)
			if lb > d+1e-9 || ub < d-1e-9 {
				t.Fatalf("relaxed bounds [%v,%v] exclude %v at (%d,%d)", lb, ub, d, i, j)
			}
		}
	}
}

func TestRelaxedTriStillSaves(t *testing.T) {
	sq := squaredSpace(60, 8)
	run := func(opts ...Option) int64 {
		o := metric.NewOracle(sq)
		s := NewSession(o, SchemeTri, opts...)
		rng := rand.New(rand.NewSource(9))
		for r := 0; r < 2000; r++ {
			i, j, k, l := rng.Intn(60), rng.Intn(60), rng.Intn(60), rng.Intn(60)
			if i == j || k == l {
				continue
			}
			s.Less(i, j, k, l)
		}
		return o.Calls()
	}
	noop := func() int64 {
		o := metric.NewOracle(sq)
		s := NewSession(o, SchemeNoop)
		rng := rand.New(rand.NewSource(9))
		for r := 0; r < 2000; r++ {
			i, j, k, l := rng.Intn(60), rng.Intn(60), rng.Intn(60), rng.Intn(60)
			if i == j || k == l {
				continue
			}
			s.Less(i, j, k, l)
		}
		return o.Calls()
	}()
	relaxed := run(WithRelaxation(2))
	if relaxed >= noop {
		t.Fatalf("relaxed Tri saved nothing: %d vs noop %d", relaxed, noop)
	}
}

func TestRelaxedRejectsUnsupportedSchemes(t *testing.T) {
	sq := squaredSpace(10, 10)
	o := metric.NewOracle(sq)
	defer func() {
		if recover() == nil {
			t.Fatal("SPLUB with relaxation did not panic")
		}
	}()
	NewSession(o, SchemeSPLUB, WithRelaxation(2))
}

func TestUnrelaxedTriWouldBeUnsound(t *testing.T) {
	// Negative control: treating d² as a true metric (ρ=1) must produce a
	// bound violation somewhere — demonstrating that the relaxation is
	// load-bearing, not decorative.
	sq := squaredSpace(20, 11)
	o := metric.NewOracle(sq)
	s := NewSession(o, SchemeTri) // wrong: no WithRelaxation
	rng := rand.New(rand.NewSource(12))
	for e := 0; e < 80; e++ {
		i, j := rng.Intn(20), rng.Intn(20)
		if i != j {
			s.Dist(i, j)
		}
	}
	violated := false
	for i := 0; i < 20 && !violated; i++ {
		for j := i + 1; j < 20 && !violated; j++ {
			if _, known := s.Known(i, j); known {
				continue
			}
			lb, ub := s.Bounds(i, j)
			d := sq.Distance(i, j)
			if lb > d+1e-9 || ub < d-1e-9 {
				violated = true
			}
		}
	}
	if !violated {
		t.Skip("no violation surfaced on this seed — acceptable, the property is existential")
	}
}
