// Tsproute: route planning over a simulated maps API — the paper's
// conclusion proposes extending the framework to the travelling-salesman
// problem; this example does exactly that, and also demonstrates the
// persistent distance cache: a second planning run over the same points
// pays only for distances the first run never resolved.
//
//	go run ./examples/tsproute
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"metricprox/internal/cachestore"
	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/prox"
)

func main() {
	const n = 80
	space := datasets.SFPOI(n, 17)
	cachePath := filepath.Join(os.TempDir(), "metricprox-tsp.cache")
	os.Remove(cachePath) // fresh demo

	plan := func(label string) {
		store, err := cachestore.OpenOrCreate(cachePath, n)
		if err != nil {
			panic(err)
		}
		defer store.Close()
		oracle := metric.NewOracle(space)
		s := core.NewSession(oracle, core.SchemeTri)
		if err := s.AttachStore(store); err != nil {
			panic(err)
		}
		tour := prox.TwoOpt(s, prox.TSPNearestNeighbour(s), 5)
		fmt.Printf("%-12s %5d API calls   tour length %.6f   (first stops: %v…)\n",
			label, oracle.Calls(), tour.Length, tour.Order[:6])
	}

	fmt.Printf("TSP route over %d points, nearest-neighbour + 2-opt, Tri Scheme\n\n", n)
	plan("first run:")
	plan("second run:") // replayed cache: should need zero new calls

	// For scale, the same pipeline without any bounds.
	oracle := metric.NewOracle(space)
	s := core.NewSession(oracle, core.SchemeNoop)
	tour := prox.TwoOpt(s, prox.TSPNearestNeighbour(s), 5)
	fmt.Printf("%-12s %5d API calls   tour length %.6f\n", "no plug-in:", oracle.Calls(), tour.Length)
	os.Remove(cachePath)
}
