// Dnaclust: medoid clustering of DNA sequences under Levenshtein edit
// distance — the paper's bioinformatics application class, where every
// distance is an O(len²) dynamic program worth avoiding.
//
// PAM runs once through the unmodified path and once through the Tri
// Scheme; the clusterings are identical while the edit-distance
// computations drop substantially.
//
//	go run ./examples/dnaclust
package main

import (
	"fmt"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
	"metricprox/internal/prox"
)

func main() {
	const (
		n      = 90
		seqLen = 60
		l      = 5 // clusters; the generator uses 5 ancestral sequences
	)
	seqs, space := datasets.DNA(n, seqLen, 11)

	run := func(scheme core.Scheme) (prox.Clustering, int64) {
		oracle := metric.NewOracle(space)
		s := core.NewSession(oracle, scheme)
		res := prox.PAM(s, l, 3)
		return res, oracle.Calls()
	}

	vanilla, vCalls := run(core.SchemeNoop)
	tri, tCalls := run(core.SchemeTri)

	fmt.Printf("PAM over %d DNA sequences (length %d), l = %d medoids\n\n", n, seqLen, l)
	fmt.Printf("clustering cost: vanilla %.4f, tri %.4f (must match)\n", vanilla.Cost, tri.Cost)
	if !fcmp.ExactEq(vanilla.Cost, tri.Cost) {
		panic("clusterings diverged")
	}
	fmt.Printf("edit-distance computations: vanilla %d, tri %d (%.1f%% saved)\n\n",
		vCalls, tCalls, 100*float64(vCalls-tCalls)/float64(vCalls))

	sizes := make([]int, l)
	for _, c := range tri.Assign {
		sizes[c]++
	}
	for c, m := range tri.Medoids {
		seq := seqs[m]
		fmt.Printf("cluster %d: %3d members, medoid #%-3d %s…\n", c, sizes[c], m, seq[:24])
	}
}
