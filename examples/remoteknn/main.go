// Remoteknn prints a kNN graph at full float precision, either by driving
// a running metricproxd daemon through the proxclient Session (-addr) or
// by running the same build in-process (-local). The two modes print the
// identical canonical format, so their outputs can be diffed byte for
// byte — which is exactly what the CI server-smoke job does to prove the
// remote path is output-identical to the in-process one.
//
//	metricproxd -demo 200 -planar -seed 1 -listen 127.0.0.1:7600 &
//	go run ./examples/remoteknn -addr http://127.0.0.1:7600 -k 5 > remote.txt
//	go run ./examples/remoteknn -local -n 200 -seed 1 -k 5      > local.txt
//	diff remote.txt local.txt
//
// -local must be given the same -n/-seed the daemon was started with; the
// in-process session is then built exactly like the daemon builds hosted
// sessions (planar SF surrogate, Tri scheme, log2 n landmarks, same
// landmark seed), so any byte of difference is a real equivalence bug.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/prox"
	"metricprox/internal/proxclient"
)

func main() {
	var (
		addrFlag  = flag.String("addr", "", "metricproxd base URL (e.g. http://127.0.0.1:7600)")
		localFlag = flag.Bool("local", false, "run in-process instead of against a daemon")
		nFlag     = flag.Int("n", 200, "dataset size for -local (match the daemon's -demo)")
		seedFlag  = flag.Int64("seed", 1, "dataset and landmark seed (match the daemon's -seed)")
		kFlag     = flag.Int("k", 5, "neighbours per object")
		nameFlag  = flag.String("session", "remoteknn", "session name on the daemon")
	)
	flag.Parse()
	if (*addrFlag == "") == !*localFlag {
		fmt.Fprintln(os.Stderr, "remoteknn: pick exactly one of -addr or -local (see -h)")
		os.Exit(2)
	}

	var graph [][]prox.Neighbor
	if *localFlag {
		graph = localGraph(*nFlag, *seedFlag, *kFlag)
	} else {
		g, err := remoteGraph(*addrFlag, *nameFlag, *seedFlag, *kFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "remoteknn:", err)
			os.Exit(1)
		}
		graph = g
	}
	print(graph)
}

// localGraph builds the session the way metricproxd's buildSession does —
// planar surrogate, Tri scheme, log2 n landmarks — and runs the builder
// in-process.
func localGraph(n int, seed int64, k int) [][]prox.Neighbor {
	lmCount := 0
	for v := n; v > 1; v /= 2 {
		lmCount++
	}
	lms := core.PickLandmarks(n, lmCount, seed)
	s := core.NewFallibleSessionWithLandmarks(
		metric.NewOracle(datasets.SFPOIPlanar(n, seed)), core.SchemeTri, lms)
	if _, err := s.BootstrapErr(lms); err != nil {
		fmt.Fprintln(os.Stderr, "remoteknn: bootstrap degraded, continuing:", err)
	}
	return prox.KNNGraph(s, k)
}

// remoteGraph drives the daemon through the client Session, so the prox
// builder itself runs here and every comparison crosses the wire (or is
// settled by the client's sound local mirror).
func remoteGraph(addr, name string, seed int64, k int) ([][]prox.Neighbor, error) {
	c := proxclient.New(addr, proxclient.Options{})
	sess, err := proxclient.CreateSession(context.Background(), c, name, "tri",
		proxclient.SessionOptions{Seed: seed, Bootstrap: true})
	if err != nil {
		return nil, err
	}
	g := prox.KNNGraph(sess, k)
	if err := sess.OracleErr(); err != nil {
		return nil, fmt.Errorf("run degraded, refusing to print estimates: %w", err)
	}
	fmt.Fprintf(os.Stderr, "remoteknn: %d objects over %d HTTP round-trips\n", sess.N(), c.Requests())
	return g, nil
}

// print emits the canonical diffable format: one line per object,
// "u<tab>id:dist ..." with distances in strconv's shortest exact form.
func print(graph [][]prox.Neighbor) {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for u, row := range graph {
		fmt.Fprintf(w, "%d\t", u)
		for x, nb := range row {
			if x > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%d:%s", nb.ID, strconv.FormatFloat(nb.Dist, 'g', -1, 64))
		}
		fmt.Fprintln(w)
	}
}
