// Geopoi: the paper's motivating scenario — building a minimum spanning
// tree over points of interest when every distance is a billable,
// high-latency call to a maps API.
//
// The example wraps the synthetic road network in a latency oracle (each
// call really sleeps, simulating the API round-trip), runs Prim's
// algorithm with and without the Tri Scheme, and reports both measured
// wall time and the cost-model extrapolation to realistic API latencies.
//
//	go run ./examples/geopoi
package main

import (
	"fmt"
	"time"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
	"metricprox/internal/prox"
)

func main() {
	const (
		n          = 120
		apiLatency = 300 * time.Microsecond // keep the demo snappy
	)
	space := datasets.UrbanGB(n, 7)

	run := func(scheme core.Scheme, label string) (int64, time.Duration, float64) {
		oracle := metric.NewLatencyOracle(space, apiLatency)
		s := core.NewSession(oracle, scheme)
		if scheme != core.SchemeNoop {
			s.Bootstrap(core.PickLandmarks(n, 7, 7))
		}
		start := time.Now()
		mst := prox.PrimMST(s)
		elapsed := time.Since(start)
		fmt.Printf("%-14s %7d API calls   %8s wall   MST weight %.6f\n",
			label, oracle.Calls(), elapsed.Round(time.Millisecond), mst.Weight)
		return oracle.Calls(), elapsed, mst.Weight
	}

	fmt.Printf("MST over %d points of interest, simulated maps API latency %v\n\n", n, apiLatency)
	vCalls, _, vWeight := run(core.SchemeNoop, "without plug:")
	tCalls, _, tWeight := run(core.SchemeTri, "tri scheme:")
	if !fcmp.ExactEq(vWeight, tWeight) {
		panic("outputs diverged")
	}

	fmt.Printf("\ncalls saved: %d (%.1f%%)\n", vCalls-tCalls,
		100*float64(vCalls-tCalls)/float64(vCalls))

	// Extrapolate with the analytical cost model to realistic API costs.
	fmt.Println("\nprojected completion time at real API latencies:")
	for _, perCall := range []time.Duration{50 * time.Millisecond, 200 * time.Millisecond, time.Second} {
		cm := metric.CostModel{PerCall: perCall}
		fmt.Printf("  %6s/call:  without plug %8s   tri %8s\n",
			perCall,
			cm.Completion(vCalls, 0).Round(time.Second),
			cm.Completion(tCalls, 0).Round(time.Second))
	}
}
