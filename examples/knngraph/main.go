// Knngraph: k-nearest-neighbour graph construction over high-dimensional
// feature vectors (the paper's Flickr scenario), built through the
// navigable-small-world searcher (internal/nsw): construct the search
// graph once, then answer a k-NN query per object over it.
//
// Two runs of the identical builder are compared: naive (raw oracle,
// textbook single-entry NSW) and IF-driven (Tri session with every beam
// comparison routed through DistIfLess and every beam seeded from the
// bootstrapped landmark rows the session already holds). High-dimensional
// spaces concentrate distances, so triangle bounds are looser than in the
// road-network examples — the savings are real but smaller, exactly the
// behaviour the paper reports for Flickr1M; the landmark seeding still
// pays because it shortens every beam's approach path. Recall is measured
// against the exact graph, so the trade-off is visible, not hidden.
//
//	go run ./examples/knngraph
package main

import (
	"fmt"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/nsw"
	"metricprox/internal/prox"
)

func main() {
	const (
		n   = 150
		dim = 64
		k   = 5
		ef  = 32
	)
	space := datasets.Flickr(n, dim, 13)
	lms := core.PickLandmarks(n, 8, 13)

	// Exact reference for recall, charged to nobody.
	exact := core.NewSession(metric.NewOracle(space), core.SchemeNoop)
	truth := prox.KNNGraph(exact, k)

	// One approximate kNN-graph build: NSW construction plus a k-NN beam
	// query per object, all through the given session's IF surface.
	run := func(scheme core.Scheme, seeded bool) ([][]prox.Neighbor, int64) {
		oracle := metric.NewOracle(space)
		s := core.NewSessionWithLandmarks(oracle, scheme, lms)
		p := nsw.Params{M: 8, EfConstruction: ef, Seed: 13}
		if seeded {
			s.Bootstrap(lms)
			p.Landmarks = lms
		}
		g, err := nsw.Build(s, p)
		if err != nil {
			panic(err)
		}
		rows := make([][]prox.Neighbor, n)
		for q := 0; q < n; q++ {
			row, err := g.Search(s, q, k, ef)
			if err != nil {
				panic(err)
			}
			rows[q] = row
		}
		return rows, oracle.Calls()
	}

	naive, nCalls := run(core.SchemeNoop, false)
	ifd, iCalls := run(core.SchemeTri, true)

	recall := func(rows [][]prox.Neighbor) float64 {
		hits := 0
		for u := range rows {
			want := make(map[int]bool, k)
			for _, nb := range truth[u] {
				want[nb.ID] = true
			}
			for _, nb := range rows[u] {
				if want[nb.ID] {
					hits++
				}
			}
		}
		return float64(hits) / float64(n*k)
	}

	fmt.Printf("approx %d-NN graph over %d vectors in %d dimensions (nsw m=8 efc=%d)\n\n", k, n, dim, ef)
	fmt.Printf("distance computations: naive %d, if-driven %d (%.1f%% saved)\n",
		nCalls, iCalls, 100*float64(nCalls-iCalls)/float64(nCalls))
	fmt.Printf("recall@%d vs exact graph: naive %.3f, if-driven %.3f\n\n", k, recall(naive), recall(ifd))

	for _, u := range []int{0, 42, 99} {
		fmt.Printf("object %3d → nearest:", u)
		for _, nb := range ifd[u] {
			fmt.Printf("  #%d (%.4f)", nb.ID, nb.Dist)
		}
		fmt.Println()
	}
}
