// Knngraph: k-nearest-neighbour graph construction over high-dimensional
// feature vectors (the paper's Flickr scenario) with the KNNrp-style
// builder and the Tri Scheme.
//
// High-dimensional spaces concentrate distances, so triangle bounds are
// looser than in the road-network examples — the savings are real but
// smaller, exactly the behaviour the paper reports for Flickr1M.
//
//	go run ./examples/knngraph
package main

import (
	"fmt"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/prox"
)

func main() {
	const (
		n   = 150
		dim = 64
		k   = 5
	)
	space := datasets.Flickr(n, dim, 13)

	run := func(scheme core.Scheme) ([][]prox.Neighbor, int64) {
		oracle := metric.NewOracle(space)
		s := core.NewSession(oracle, scheme)
		if scheme != core.SchemeNoop {
			s.Bootstrap(core.PickLandmarks(n, 8, 13))
		}
		return prox.KNNGraph(s, k), oracle.Calls()
	}

	vanilla, vCalls := run(core.SchemeNoop)
	tri, tCalls := run(core.SchemeTri)

	fmt.Printf("%d-NN graph over %d vectors in %d dimensions\n\n", k, n, dim)
	for u := range vanilla {
		for x := range vanilla[u] {
			if vanilla[u][x].ID != tri[u][x].ID {
				panic("kNN graphs diverged")
			}
		}
	}
	fmt.Printf("distance computations: vanilla %d, tri %d (%.1f%% saved)\n\n",
		vCalls, tCalls, 100*float64(vCalls-tCalls)/float64(vCalls))

	for _, u := range []int{0, 42, 99} {
		fmt.Printf("object %3d → nearest:", u)
		for _, nb := range tri[u] {
			fmt.Printf("  #%d (%.4f)", nb.ID, nb.Dist)
		}
		fmt.Println()
	}
}
