// Searchgraph builds the navigable-small-world search graph (internal/nsw)
// and prints it in its canonical diffable Dump form, either in-process
// (-local) or by driving a running metricproxd daemon through the
// proxclient Session (-addr). Both modes run the identical builder —
// every beam comparison goes through the IF, so the graph is a pure
// function of the distances — and the CI server-smoke job diffs the two
// outputs byte for byte to prove it.
//
//	metricproxd -demo 200 -planar -seed 1 -listen 127.0.0.1:7600 &
//	go run ./examples/searchgraph -addr http://127.0.0.1:7600 > remote.txt
//	go run ./examples/searchgraph -local -n 200 -seed 1        > local.txt
//	diff remote.txt local.txt
//
// With -search the example instead queries the daemon's /search endpoint
// for every object and reports recall@k against an exact in-process
// reference, failing (exit 1) below -min-recall — the CI search-smoke
// job's quality gate.
//
//	go run ./examples/searchgraph -addr http://127.0.0.1:7600 -search \
//	    -n 200 -seed 1 -k 10 -min-recall 0.9
//
// -local (and -search's reference) must be given the same -n/-seed the
// daemon was started with; the graph is then built exactly like the
// daemon builds it (planar SF surrogate, Tri scheme, log2 n landmarks
// seeding every beam), so any byte of difference is a real equivalence
// bug.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/metric"
	"metricprox/internal/nsw"
	"metricprox/internal/prox"
	"metricprox/internal/proxclient"
)

func main() {
	var (
		addrFlag   = flag.String("addr", "", "metricproxd base URL (e.g. http://127.0.0.1:7600)")
		localFlag  = flag.Bool("local", false, "build in-process instead of against a daemon")
		searchFlag = flag.Bool("search", false, "with -addr: query /search for every object and gate recall@k")
		nFlag      = flag.Int("n", 200, "dataset size (match the daemon's -demo)")
		seedFlag   = flag.Int64("seed", 1, "dataset and landmark seed (match the daemon's -seed)")
		kFlag      = flag.Int("k", 10, "neighbours per query for -search")
		minRecall  = flag.Float64("min-recall", 0.9, "recall@k floor for -search (exit 1 below it)")
		nameFlag   = flag.String("session", "searchgraph", "session name on the daemon")
	)
	flag.Parse()
	if (*addrFlag == "") == !*localFlag {
		fmt.Fprintln(os.Stderr, "searchgraph: pick exactly one of -addr or -local (see -h)")
		os.Exit(2)
	}
	if *searchFlag && *addrFlag == "" {
		fmt.Fprintln(os.Stderr, "searchgraph: -search needs -addr (see -h)")
		os.Exit(2)
	}

	switch {
	case *localFlag:
		g := localBuild(*nFlag, *seedFlag)
		if err := g.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "searchgraph:", err)
			os.Exit(1)
		}
	case *searchFlag:
		if err := searchGate(*addrFlag, *nameFlag, *nFlag, *seedFlag, *kFlag, *minRecall); err != nil {
			fmt.Fprintln(os.Stderr, "searchgraph:", err)
			os.Exit(1)
		}
	default:
		g, err := remoteBuild(*addrFlag, *nameFlag, *seedFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "searchgraph:", err)
			os.Exit(1)
		}
		if err := g.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "searchgraph:", err)
			os.Exit(1)
		}
	}
}

// params mirrors the daemon's /search defaults: zero M/EfConstruction
// (WithDefaults fills them), the session seed, and the session's own
// landmarks seeding every beam.
func params(n int, seed int64) nsw.Params {
	lmCount := 0
	for v := n; v > 1; v /= 2 {
		lmCount++
	}
	return nsw.Params{Seed: seed, Landmarks: core.PickLandmarks(n, lmCount, seed)}
}

// localBuild constructs the graph over the session metricproxd's
// buildSession would host: planar surrogate, Tri scheme, bootstrapped
// log2-n landmarks.
func localBuild(n int, seed int64) *nsw.Graph {
	p := params(n, seed)
	s := core.NewFallibleSessionWithLandmarks(
		metric.NewOracle(datasets.SFPOIPlanar(n, seed)), core.SchemeTri, p.Landmarks)
	if _, err := s.BootstrapErr(p.Landmarks); err != nil {
		fmt.Fprintln(os.Stderr, "searchgraph: bootstrap degraded, continuing:", err)
	}
	g, err := nsw.Build(s, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "searchgraph: build aborted, dumping committed prefix:", err)
	}
	return g
}

// remoteBuild runs the identical builder against the remote client
// Session: every beam decision crosses the wire (or is settled by the
// client's sound local mirror), and the resulting dump must equal the
// local one byte for byte.
func remoteBuild(addr, name string, seed int64) (*nsw.Graph, error) {
	c := proxclient.New(addr, proxclient.Options{})
	sess, err := proxclient.CreateSession(context.Background(), c, name, "tri",
		proxclient.SessionOptions{Seed: seed, Bootstrap: true})
	if err != nil {
		return nil, err
	}
	g, err := nsw.Build(sess, params(sess.N(), seed))
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "searchgraph: %d nodes over %d HTTP round-trips\n", g.N(), c.Requests())
	return g, nil
}

// searchGate queries the daemon's /search endpoint for every object and
// measures recall@k against the exact kNN of an in-process reference
// over the same space, erroring below the floor.
func searchGate(addr, name string, n int, seed int64, k int, floor float64) error {
	c := proxclient.New(addr, proxclient.Options{})
	sess, err := proxclient.CreateSession(context.Background(), c, name, "tri",
		proxclient.SessionOptions{Seed: seed, Bootstrap: true})
	if err != nil {
		return err
	}
	if sess.N() != n {
		return fmt.Errorf("daemon hosts %d objects, -n says %d; pass the daemon's -demo size", sess.N(), n)
	}
	exact := core.NewSession(metric.NewOracle(datasets.SFPOIPlanar(n, seed)), core.SchemeNoop)
	ctx := context.Background()
	hits, total := 0, 0
	for q := 0; q < n; q++ {
		got, _, err := sess.RemoteSearch(ctx, q, k, proxclient.SearchParams{})
		if err != nil {
			return fmt.Errorf("search %d: %w", q, err)
		}
		truth := make(map[int]bool, k)
		for _, nb := range prox.KNNRow(exact, q, k) {
			truth[nb.ID] = true
		}
		for _, nb := range got {
			if truth[nb.ID] {
				hits++
			}
		}
		total += k
	}
	recall := float64(hits) / float64(total)
	fmt.Printf("recall@%d over %d queries: %.4f (floor %.2f)\n", k, n, recall, floor)
	if recall < floor {
		return fmt.Errorf("recall@%d = %.4f below the %.2f floor", k, recall, floor)
	}
	return nil
}
