// Quickstart: wrap an expensive distance function in a Session, run a
// classic proximity algorithm through it, and watch the oracle-call count
// drop — with bit-identical output.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
	"metricprox/internal/prox"
)

func main() {
	// 1. A metric space whose distances are expensive to compute: here a
	// synthetic road network standing in for a maps API.
	const n = 200
	space := datasets.SFPOI(n, 1)

	// 2. The unmodified algorithm: the Noop scheme resolves every distance
	// it compares, exactly like the textbook code.
	vanillaOracle := metric.NewOracle(space)
	vanilla := core.NewSession(vanillaOracle, core.SchemeNoop)
	mstVanilla := prox.PrimMST(vanilla)

	// 3. The same algorithm through the Tri Scheme: IF statements are
	// answered from triangle-inequality bounds whenever possible.
	triOracle := metric.NewOracle(space)
	tri := core.NewSession(triOracle, core.SchemeTri)
	tri.Bootstrap(core.PickLandmarks(n, 8, 1)) // optional landmark warm-up
	mstTri := prox.PrimMST(tri)

	fmt.Printf("MST weight (vanilla): %.6f over %d edges\n", mstVanilla.Weight, len(mstVanilla.Edges))
	fmt.Printf("MST weight (tri):     %.6f over %d edges\n", mstTri.Weight, len(mstTri.Edges))
	if !fcmp.ExactEq(mstVanilla.Weight, mstTri.Weight) {
		panic("outputs must be identical — the framework guarantees it")
	}

	fmt.Printf("\noracle calls without plug-in: %d (= all %d pairs)\n",
		vanillaOracle.Calls(), n*(n-1)/2)
	fmt.Printf("oracle calls with Tri Scheme: %d (%.1f%% saved)\n",
		triOracle.Calls(),
		100*float64(vanillaOracle.Calls()-triOracle.Calls())/float64(vanillaOracle.Calls()))

	// 4. The session also answers ad-hoc comparisons and bound queries.
	st := tri.Stats()
	fmt.Printf("\nsession stats: %d comparisons saved, %d resolved, %d bound probes\n",
		st.SavedComparisons, st.ResolvedComparisons, st.BoundProbes)
	lb, ub := tri.Bounds(0, 1)
	fmt.Printf("current bounds for dist(0,1) without an oracle call: [%.4f, %.4f]\n", lb, ub)
}
