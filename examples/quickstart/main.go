// Quickstart: wrap an expensive distance function in a Session, run a
// classic proximity algorithm through it, and watch the oracle-call count
// drop — with bit-identical output. The final stage re-runs the same
// algorithm against a deliberately flaky oracle to show the failure
// model: retries absorb the faults and the output is still identical.
//
//	go run ./examples/quickstart
//
// With -listen the run also serves its live metrics (and pprof) over
// HTTP and then waits for an interrupt, so you can inspect the counters
// a finished run left behind — the CI exposition smoke test drives this:
//
//	go run ./examples/quickstart -listen :6060 &
//	curl -s localhost:6060/metrics | jq .
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"metricprox/internal/core"
	"metricprox/internal/datasets"
	"metricprox/internal/faultmetric"
	"metricprox/internal/fcmp"
	"metricprox/internal/metric"
	"metricprox/internal/obs"
	"metricprox/internal/obs/obshttp"
	"metricprox/internal/prox"
	"metricprox/internal/resilient"
)

func main() {
	listenFlag := flag.String("listen", "", "serve /metrics JSON and /debug/pprof on this address and wait for Ctrl-C after the run")
	flag.Parse()

	var observer *obs.Observer
	var srv *obshttp.Server
	if *listenFlag != "" {
		observer = obs.NewObserver(false, 0, nil)
		var err error
		srv, err = obshttp.Serve(*listenFlag, observer.Registry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quickstart: -listen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "quickstart: serving metrics on http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())
	}
	var opts []core.Option
	if observer != nil {
		opts = append(opts, core.WithObserver(observer))
	}

	// 1. A metric space whose distances are expensive to compute: here a
	// synthetic road network standing in for a maps API.
	const n = 200
	space := datasets.SFPOI(n, 1)

	// 2. The unmodified algorithm: the Noop scheme resolves every distance
	// it compares, exactly like the textbook code.
	vanillaOracle := metric.NewOracle(space)
	vanilla := core.NewSession(vanillaOracle, core.SchemeNoop, opts...)
	mstVanilla := prox.PrimMST(vanilla)

	// 3. The same algorithm through the Tri Scheme: IF statements are
	// answered from triangle-inequality bounds whenever possible.
	triOracle := metric.NewOracle(space)
	tri := core.NewSession(triOracle, core.SchemeTri, opts...)
	tri.Bootstrap(core.PickLandmarks(n, 8, 1)) // optional landmark warm-up
	mstTri := prox.PrimMST(tri)

	fmt.Printf("MST weight (vanilla): %.6f over %d edges\n", mstVanilla.Weight, len(mstVanilla.Edges))
	fmt.Printf("MST weight (tri):     %.6f over %d edges\n", mstTri.Weight, len(mstTri.Edges))
	if !fcmp.ExactEq(mstVanilla.Weight, mstTri.Weight) {
		panic("outputs must be identical — the framework guarantees it")
	}

	fmt.Printf("\noracle calls without plug-in: %d (= all %d pairs)\n",
		vanillaOracle.Calls(), n*(n-1)/2)
	fmt.Printf("oracle calls with Tri Scheme: %d (%.1f%% saved)\n",
		triOracle.Calls(),
		100*float64(vanillaOracle.Calls()-triOracle.Calls())/float64(vanillaOracle.Calls()))

	// 4. The session also answers ad-hoc comparisons and bound queries.
	st := tri.Stats()
	fmt.Printf("\nsession stats: %d comparisons saved, %d resolved, %d bound probes\n",
		st.SavedComparisons, st.ResolvedComparisons, st.BoundProbes)
	lb, ub := tri.Bounds(0, 1)
	fmt.Printf("current bounds for dist(0,1) without an oracle call: [%.4f, %.4f]\n", lb, ub)

	// 5. Real oracles fail. Inject a deterministic fault schedule (30% of
	// attempts error out) behind the retry policy: the session retries
	// each failure with deterministic backoff, the output stays identical,
	// and the stats show what the flakiness cost.
	injector := faultmetric.New(space, faultmetric.Config{
		Seed:               1,
		TransientRate:      0.3,
		MaxFailuresPerPair: 3, // below the policy's 5 attempts ⇒ always completes
	})
	policy := resilient.New(injector, resilient.RetryOnlyPolicy(1))
	if observer != nil {
		injector.Observe(observer.Registry)
		policy.Observe(observer.Registry)
	}
	flaky := core.NewFallibleSession(policy, core.SchemeTri, opts...)
	flaky.Bootstrap(core.PickLandmarks(n, 8, 1))
	mstFlaky := prox.PrimMST(flaky)
	if !fcmp.ExactEq(mstVanilla.Weight, mstFlaky.Weight) {
		panic("flaky-oracle output must match too — retries hide the faults")
	}
	if flaky.OracleErr() != nil {
		panic("no failure should have escaped the retry budget")
	}
	fst := flaky.Stats()
	fmt.Printf("\nflaky oracle (30%% transient failures): same MST, %d calls + %d retries, %d injected faults absorbed\n",
		fst.OracleCalls, fst.Retries, injector.Counters().Failures())

	if srv != nil {
		fmt.Fprintln(os.Stderr, "quickstart: run complete — metrics still being served; Ctrl-C to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		// Drain in-flight scrapes instead of abandoning them mid-response.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
}
