// Imagesearch: similarity search over shapes (point sets) under the
// Hausdorff distance — the computer-vision application family the paper's
// introduction cites (image comparison under Hausdorff distance,
// triangle-inequality-based pruning in image databases).
//
// Each "image" is a 2-D point set; one Hausdorff evaluation costs
// O(|A|·|B|) — a genuinely expensive oracle. The example builds a small
// shape database, then answers k-nearest-shape queries through the
// Session, comparing against the linear scan.
//
//	go run ./examples/imagesearch
package main

import (
	"fmt"
	"math"
	"math/rand"

	"metricprox/internal/core"
	"metricprox/internal/metric"
	"metricprox/internal/query"
)

// makeShapes synthesises n shapes: noisy samples along circles, boxes and
// line segments of varying size and position.
func makeShapes(n int, rng *rand.Rand) [][][]float64 {
	shapes := make([][][]float64, n)
	for i := range shapes {
		cx, cy := rng.Float64(), rng.Float64()
		size := 0.05 + 0.2*rng.Float64()
		pts := make([][]float64, 40)
		kind := rng.Intn(3)
		for p := range pts {
			t := float64(p) / float64(len(pts)) * 2 * math.Pi
			var x, y float64
			switch kind {
			case 0: // circle
				x, y = math.Cos(t)*size, math.Sin(t)*size
			case 1: // box
				s := float64(p) / float64(len(pts)) * 4
				switch int(s) {
				case 0:
					x, y = s-0.5, -0.5
				case 1:
					x, y = 0.5, s-1.5
				case 2:
					x, y = 2.5-s, 0.5
				default:
					x, y = -0.5, 3.5-s
				}
				x, y = x*size, y*size
			default: // segment
				x, y = (float64(p)/float64(len(pts))-0.5)*2*size, 0
			}
			pts[p] = []float64{
				cx + x + rng.NormFloat64()*0.004,
				cy + y + rng.NormFloat64()*0.004,
			}
		}
		shapes[i] = pts
	}
	return shapes
}

func main() {
	const n = 120
	rng := rand.New(rand.NewSource(23))
	shapes := makeShapes(n, rng)
	// Shapes live in roughly [−0.25, 1.25]²; scale by 1/diameter bound.
	space := metric.NewPointSets(shapes, 1/(1.5*math.Sqrt2))

	run := func(scheme core.Scheme) (int64, []query.Result) {
		oracle := metric.NewOracle(space)
		s := core.NewSession(oracle, scheme)
		if scheme != core.SchemeNoop {
			s.Bootstrap(core.PickLandmarks(n, 7, 23))
		}
		var last []query.Result
		for q := 0; q < n; q += 8 {
			last = query.KNN(s, q, 3)
		}
		return oracle.Calls(), last
	}

	fmt.Printf("3-nearest-shape queries over %d Hausdorff-compared shapes\n\n", n)
	vCalls, vRes := run(core.SchemeNoop)
	tCalls, tRes := run(core.SchemeTri)
	for i := range vRes {
		if vRes[i].ID != tRes[i].ID {
			panic("query answers diverged")
		}
	}
	fmt.Printf("Hausdorff evaluations: linear scan %d, session+tri %d (%.1f%% saved)\n",
		vCalls, tCalls, 100*float64(vCalls-tCalls)/float64(vCalls))
	fmt.Printf("\nnearest shapes to shape %d:", n-8)
	for _, r := range tRes {
		fmt.Printf("  #%d (%.4f)", r.ID, r.Dist)
	}
	fmt.Println()
}
